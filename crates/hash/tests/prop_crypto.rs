//! Randomized property tests for the cryptographic primitives, driven
//! by the workspace's deterministic PRNG (`miv_obs::rng`).

use miv_hash::digest::{ChunkHasher, Digest, HashAlgo, Md5Hasher, Sha1Hasher, Sha256Hasher};
use miv_hash::md5::Md5;
use miv_hash::narrow::{Prp120, XorMac120};
use miv_hash::sha256::sha256;
use miv_hash::xtea::{Prp128, Xtea};
use miv_hash::XorMac;
use miv_obs::rng::Rng;

fn random_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn random_key(rng: &mut Rng) -> [u8; 16] {
    let mut key = [0u8; 16];
    rng.fill_bytes(&mut key);
    key
}

/// Streaming MD5 equals one-shot MD5 regardless of how the input is
/// chopped.
#[test]
fn md5_streaming_equals_oneshot() {
    let mut rng = Rng::seed_from_u64(0x3d50);
    for _case in 0..64 {
        let len = rng.gen_range_usize(0, 600);
        let data = random_bytes(&mut rng, len);
        let want = {
            let mut ctx = Md5::new();
            ctx.update(&data);
            ctx.finalize()
        };
        let mut ctx = Md5::new();
        let mut offsets: Vec<usize> = (0..rng.gen_range_usize(0, 8))
            .map(|_| rng.gen_range_usize(0, data.len() + 1))
            .collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        for pair in offsets.windows(2) {
            ctx.update(&data[pair[0]..pair[1]]);
        }
        assert_eq!(ctx.finalize(), want);
    }
}

/// Different inputs (almost surely) hash differently, and a hasher is
/// deterministic.
#[test]
fn hashers_deterministic_and_sensitive() {
    let mut rng = Rng::seed_from_u64(0xd1f5);
    for _case in 0..64 {
        let len = rng.gen_range_usize(1, 128);
        let a = random_bytes(&mut rng, len);
        let mut b = a.clone();
        let idx = rng.gen_range_usize(0, b.len());
        b[idx] ^= 0x01;
        for hasher in [&Md5Hasher as &dyn ChunkHasher, &Sha1Hasher, &Sha256Hasher] {
            assert_eq!(hasher.digest(&a), hasher.digest(&a));
            assert_ne!(hasher.digest(&a), hasher.digest(&b));
        }
    }
}

/// `digest_batch` equals per-message `digest` for randomized ragged
/// batches — arbitrary lengths in arbitrary order, so lane grouping,
/// length bucketing and the scalar remainder all get exercised — for
/// every hash unit.
#[test]
fn digest_batch_equals_serial_on_ragged_batches() {
    let mut rng = Rng::seed_from_u64(0xba7c);
    for algo in HashAlgo::ALL {
        let hasher = algo.hasher();
        for _case in 0..32 {
            let n = rng.gen_range_usize(0, 12);
            let msgs: Vec<Vec<u8>> = (0..n)
                .map(|_| {
                    // Lengths biased toward collisions so same-length
                    // messages land apart in the batch.
                    let len = match rng.gen_range_usize(0, 3) {
                        0 => 64,
                        1 => rng.gen_range_usize(0, 8) * 16,
                        _ => rng.gen_range_usize(0, 200),
                    };
                    random_bytes(&mut rng, len)
                })
                .collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let want: Vec<Digest> = refs.iter().map(|m| hasher.digest(m)).collect();
            assert_eq!(hasher.digest_batch(&refs), want, "{}", algo.label());
        }
    }
}

/// SHA-256 against the FIPS 180-4 / NIST CAVS vectors: empty, "abc",
/// the two-block message, and one million 'a's.
#[test]
fn sha256_nist_vectors() {
    let cases: [(&[u8], &str); 3] = [
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for (msg, want) in cases {
        let hex: String = sha256(msg).iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, want);
    }
    let million = vec![b'a'; 1_000_000];
    let hex: String = sha256(&million)
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    assert_eq!(
        hex,
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

/// XTEA and both PRPs are bijective (decrypt ∘ encrypt = id).
#[test]
fn ciphers_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xc195);
    for _case in 0..64 {
        let key = random_key(&mut rng);
        let block = random_key(&mut rng);
        let half = [rng.next_u32(), rng.next_u32()];
        let xtea = Xtea::new(key);
        assert_eq!(xtea.decrypt_block(xtea.encrypt_block(half)), half);
        let prp = Prp128::new(key);
        assert_eq!(prp.decrypt(prp.encrypt(block)), block);
        let mut b15 = [0u8; 15];
        b15.copy_from_slice(&block[..15]);
        let prp120 = Prp120::new(key);
        assert_eq!(prp120.decrypt(prp120.encrypt(b15)), b15);
    }
}

/// Any sequence of incremental XOR-MAC updates equals recomputation
/// from scratch (both widths).
#[test]
fn xormac_update_sequences_equal_recompute() {
    let mut rng = Rng::seed_from_u64(0x3ac5);
    for _case in 0..64 {
        let key = random_key(&mut rng);
        let n = rng.gen_range_usize(2, 5);
        let mut blocks: Vec<Vec<u8>> = (0..n).map(|_| random_bytes(&mut rng, 32)).collect();
        let mac = XorMac::new(key);
        let mac120 = XorMac120::new(key);
        let mut ts = vec![false; n];
        let mut tag = mac.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        let mut tag120 =
            mac120.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        for _ in 0..rng.gen_range_usize(0, 8) {
            let i = rng.gen_range_usize(0, n);
            let new_block = random_bytes(&mut rng, 32);
            let old_ts = ts[i];
            ts[i] = !old_ts;
            tag = mac.update(tag, i as u64, (&blocks[i], old_ts), (&new_block, ts[i]));
            tag120 = mac120.update(tag120, i as u64, (&blocks[i], old_ts), (&new_block, ts[i]));
            blocks[i] = new_block;
        }
        let want = mac.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        let want120 =
            mac120.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        assert_eq!(tag, want);
        assert_eq!(tag120, want120);
    }
}

/// Verification rejects any single-block substitution.
#[test]
fn xormac_rejects_substitution() {
    let mut rng = Rng::seed_from_u64(0x5b57);
    for _case in 0..64 {
        let key = random_key(&mut rng);
        let n = rng.gen_range_usize(2, 5);
        let blocks: Vec<Vec<u8>> = (0..n).map(|_| random_bytes(&mut rng, 16)).collect();
        let mac = XorMac::new(key);
        let tag = mac.mac_blocks(blocks.iter().map(|b| (b.as_slice(), false)));
        let i = rng.gen_range_usize(0, n);
        let replacement = random_bytes(&mut rng, 16);
        if replacement == blocks[i] {
            continue; // astronomically unlikely; skip rather than fail
        }
        let mut tampered = blocks.clone();
        tampered[i] = replacement;
        assert!(!mac.verify(tag, tampered.iter().map(|b| (b.as_slice(), false))));
    }
}

/// Digest hex round-trips.
#[test]
fn digest_hex_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xd16e);
    for _case in 0..64 {
        let d = Digest::from_bytes(random_key(&mut rng));
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }
}
