//! Randomized property tests for the cryptographic primitives, driven
//! by the workspace's deterministic PRNG (`miv_obs::rng`).

use miv_hash::digest::{ChunkHasher, Digest, Md5Hasher, Sha1Hasher};
use miv_hash::md5::Md5;
use miv_hash::narrow::{Prp120, XorMac120};
use miv_hash::xtea::{Prp128, Xtea};
use miv_hash::XorMac;
use miv_obs::rng::Rng;

fn random_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn random_key(rng: &mut Rng) -> [u8; 16] {
    let mut key = [0u8; 16];
    rng.fill_bytes(&mut key);
    key
}

/// Streaming MD5 equals one-shot MD5 regardless of how the input is
/// chopped.
#[test]
fn md5_streaming_equals_oneshot() {
    let mut rng = Rng::seed_from_u64(0x3d50);
    for _case in 0..64 {
        let len = rng.gen_range_usize(0, 600);
        let data = random_bytes(&mut rng, len);
        let want = {
            let mut ctx = Md5::new();
            ctx.update(&data);
            ctx.finalize()
        };
        let mut ctx = Md5::new();
        let mut offsets: Vec<usize> = (0..rng.gen_range_usize(0, 8))
            .map(|_| rng.gen_range_usize(0, data.len() + 1))
            .collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        for pair in offsets.windows(2) {
            ctx.update(&data[pair[0]..pair[1]]);
        }
        assert_eq!(ctx.finalize(), want);
    }
}

/// Different inputs (almost surely) hash differently, and a hasher is
/// deterministic.
#[test]
fn hashers_deterministic_and_sensitive() {
    let mut rng = Rng::seed_from_u64(0xd1f5);
    for _case in 0..64 {
        let len = rng.gen_range_usize(1, 128);
        let a = random_bytes(&mut rng, len);
        let mut b = a.clone();
        let idx = rng.gen_range_usize(0, b.len());
        b[idx] ^= 0x01;
        for hasher in [&Md5Hasher as &dyn ChunkHasher, &Sha1Hasher] {
            assert_eq!(hasher.digest(&a), hasher.digest(&a));
            assert_ne!(hasher.digest(&a), hasher.digest(&b));
        }
    }
}

/// XTEA and both PRPs are bijective (decrypt ∘ encrypt = id).
#[test]
fn ciphers_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xc195);
    for _case in 0..64 {
        let key = random_key(&mut rng);
        let block = random_key(&mut rng);
        let half = [rng.next_u32(), rng.next_u32()];
        let xtea = Xtea::new(key);
        assert_eq!(xtea.decrypt_block(xtea.encrypt_block(half)), half);
        let prp = Prp128::new(key);
        assert_eq!(prp.decrypt(prp.encrypt(block)), block);
        let mut b15 = [0u8; 15];
        b15.copy_from_slice(&block[..15]);
        let prp120 = Prp120::new(key);
        assert_eq!(prp120.decrypt(prp120.encrypt(b15)), b15);
    }
}

/// Any sequence of incremental XOR-MAC updates equals recomputation
/// from scratch (both widths).
#[test]
fn xormac_update_sequences_equal_recompute() {
    let mut rng = Rng::seed_from_u64(0x3ac5);
    for _case in 0..64 {
        let key = random_key(&mut rng);
        let n = rng.gen_range_usize(2, 5);
        let mut blocks: Vec<Vec<u8>> = (0..n).map(|_| random_bytes(&mut rng, 32)).collect();
        let mac = XorMac::new(key);
        let mac120 = XorMac120::new(key);
        let mut ts = vec![false; n];
        let mut tag = mac.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        let mut tag120 =
            mac120.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        for _ in 0..rng.gen_range_usize(0, 8) {
            let i = rng.gen_range_usize(0, n);
            let new_block = random_bytes(&mut rng, 32);
            let old_ts = ts[i];
            ts[i] = !old_ts;
            tag = mac.update(tag, i as u64, (&blocks[i], old_ts), (&new_block, ts[i]));
            tag120 = mac120.update(tag120, i as u64, (&blocks[i], old_ts), (&new_block, ts[i]));
            blocks[i] = new_block;
        }
        let want = mac.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        let want120 =
            mac120.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        assert_eq!(tag, want);
        assert_eq!(tag120, want120);
    }
}

/// Verification rejects any single-block substitution.
#[test]
fn xormac_rejects_substitution() {
    let mut rng = Rng::seed_from_u64(0x5b57);
    for _case in 0..64 {
        let key = random_key(&mut rng);
        let n = rng.gen_range_usize(2, 5);
        let blocks: Vec<Vec<u8>> = (0..n).map(|_| random_bytes(&mut rng, 16)).collect();
        let mac = XorMac::new(key);
        let tag = mac.mac_blocks(blocks.iter().map(|b| (b.as_slice(), false)));
        let i = rng.gen_range_usize(0, n);
        let replacement = random_bytes(&mut rng, 16);
        if replacement == blocks[i] {
            continue; // astronomically unlikely; skip rather than fail
        }
        let mut tampered = blocks.clone();
        tampered[i] = replacement;
        assert!(!mac.verify(tag, tampered.iter().map(|b| (b.as_slice(), false))));
    }
}

/// Digest hex round-trips.
#[test]
fn digest_hex_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xd16e);
    for _case in 0..64 {
        let d = Digest::from_bytes(random_key(&mut rng));
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }
}
