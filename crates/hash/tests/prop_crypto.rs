//! Property tests for the cryptographic primitives.

use miv_hash::digest::{ChunkHasher, Digest, Md5Hasher, Sha1Hasher};
use miv_hash::md5::Md5;
use miv_hash::narrow::{Prp120, XorMac120};
use miv_hash::xtea::{Prp128, Xtea};
use miv_hash::XorMac;
use proptest::prelude::*;

proptest! {
    /// Streaming MD5 equals one-shot MD5 regardless of how the input is
    /// chopped.
    #[test]
    fn md5_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        cuts in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let want = {
            let mut ctx = Md5::new();
            ctx.update(&data);
            ctx.finalize()
        };
        let mut ctx = Md5::new();
        let mut offsets: Vec<usize> =
            cuts.iter().map(|&c| c as usize % (data.len() + 1)).collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        for pair in offsets.windows(2) {
            ctx.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(ctx.finalize(), want);
    }

    /// Different inputs (almost surely) hash differently, and a hasher is
    /// deterministic.
    #[test]
    fn hashers_deterministic_and_sensitive(
        a in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<u8>(),
    ) {
        let mut b = a.clone();
        let idx = flip as usize % b.len();
        b[idx] ^= 0x01;
        for hasher in [&Md5Hasher as &dyn ChunkHasher, &Sha1Hasher] {
            prop_assert_eq!(hasher.digest(&a), hasher.digest(&a));
            prop_assert_ne!(hasher.digest(&a), hasher.digest(&b));
        }
    }

    /// XTEA and both PRPs are bijective (decrypt ∘ encrypt = id).
    #[test]
    fn ciphers_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>(), half in any::<[u32; 2]>()) {
        let xtea = Xtea::new(key);
        prop_assert_eq!(xtea.decrypt_block(xtea.encrypt_block(half)), half);
        let prp = Prp128::new(key);
        prop_assert_eq!(prp.decrypt(prp.encrypt(block)), block);
        let mut b15 = [0u8; 15];
        b15.copy_from_slice(&block[..15]);
        let prp120 = Prp120::new(key);
        prop_assert_eq!(prp120.decrypt(prp120.encrypt(b15)), b15);
    }

    /// Any sequence of incremental XOR-MAC updates equals recomputation
    /// from scratch (both widths).
    #[test]
    fn xormac_update_sequences_equal_recompute(
        key in any::<[u8; 16]>(),
        initial in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 32..33), 2..5),
        updates in proptest::collection::vec((any::<u16>(), proptest::collection::vec(any::<u8>(), 32..33)), 0..8),
    ) {
        let n = initial.len();
        let mac = XorMac::new(key);
        let mac120 = XorMac120::new(key);
        let mut blocks = initial.clone();
        let mut ts = vec![false; n];
        let mut tag = mac.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        let mut tag120 =
            mac120.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        for (which, new_block) in &updates {
            let i = *which as usize % n;
            let old_ts = ts[i];
            ts[i] = !old_ts;
            tag = mac.update(tag, i as u64, (&blocks[i], old_ts), (new_block, ts[i]));
            tag120 = mac120.update(tag120, i as u64, (&blocks[i], old_ts), (new_block, ts[i]));
            blocks[i] = new_block.clone();
        }
        let want = mac.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        let want120 =
            mac120.mac_blocks(blocks.iter().map(|b| b.as_slice()).zip(ts.iter().copied()));
        prop_assert_eq!(tag, want);
        prop_assert_eq!(tag120, want120);
    }

    /// Verification rejects any single-block substitution.
    #[test]
    fn xormac_rejects_substitution(
        key in any::<[u8; 16]>(),
        blocks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 16..17), 2..5),
        which in any::<u16>(),
        replacement in proptest::collection::vec(any::<u8>(), 16..17),
    ) {
        let mac = XorMac::new(key);
        let tag = mac.mac_blocks(blocks.iter().map(|b| (b.as_slice(), false)));
        let i = which as usize % blocks.len();
        prop_assume!(replacement != blocks[i]);
        let mut tampered = blocks.clone();
        tampered[i] = replacement;
        prop_assert!(!mac.verify(tag, tampered.iter().map(|b| (b.as_slice(), false))));
    }

    /// Digest hex round-trips.
    #[test]
    fn digest_hex_roundtrip(bytes in any::<[u8; 16]>()) {
        let d = Digest::from_bytes(bytes);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }
}
