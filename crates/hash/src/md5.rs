//! The MD5 message-digest algorithm (RFC 1321).
//!
//! MD5 is the hash the paper's hardware unit implements (§6.2): a 512-bit
//! block is digested into 128 bits through 64 rounds of simple 32-bit
//! operations. This module provides a streaming [`Md5`] context, the
//! one-shot [`md5`] function (which compresses full blocks straight from
//! the input slice, no staging copy), and the multi-lane [`md5_multi`]
//! (N independent equal-length messages interleaved through one pass of
//! the round function, so the lanes' per-round dependency chains overlap
//! — instruction-level parallelism a single message cannot expose).
//!
//! # Security
//!
//! MD5 is broken for collision resistance. It is implemented here because
//! the paper evaluates it; see the crate-level documentation.

use crate::digest::Digest;

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Round constants: `floor(2^32 * abs(sin(i+1)))`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Initial state A/B/C/D.
const INIT: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];

/// A streaming MD5 context.
///
/// Feed data with [`update`](Md5::update), then call
/// [`finalize`](Md5::finalize) to obtain the 128-bit [`Digest`].
///
/// # Examples
///
/// ```
/// use miv_hash::md5::Md5;
///
/// let mut ctx = Md5::new();
/// ctx.update(b"hello ");
/// ctx.update(b"world");
/// assert_eq!(ctx.finalize().to_hex(), "5eb63bbbe01eeed093cb22bb8f5acdc3");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes, modulo 2^64.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a fresh MD5 context.
    pub fn new() -> Self {
        Md5 {
            state: INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        // Fill a partially-filled buffer first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input — no staging copy.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            compress(&mut self.state, block.try_into().expect("64-byte split"));
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the digest, consuming the context.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 56 mod 64, then the 64-bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` also advances `len`, but the length word was latched first.
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bit_len.to_le_bytes());
        self.len = self.len.wrapping_add(8);
        self.buf[56..64].copy_from_slice(&tail);
        compress(&mut self.state, &{ self.buf });

        state_digest(&self.state)
    }

    /// One 512-bit compression step.
    fn compress(&mut self, block: &[u8; 64]) {
        compress(&mut self.state, block);
    }
}

/// Serializes an MD5 state into the little-endian 128-bit digest.
fn state_digest(state: &[u32; 4]) -> Digest {
    let mut out = [0u8; 16];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    Digest::from_bytes(out)
}

/// One 512-bit compression step on a bare state.
fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
    let mut lanes = [*state];
    compress_multi(&mut lanes, &[block]);
    *state = lanes[0];
}

/// One 512-bit compression step across `N` independent lanes.
///
/// The round recurrences of the lanes are interleaved so their serial
/// dependency chains (four adds and a rotate per round each) overlap in
/// the pipeline; with `N = 1` the compiler reduces it to the scalar
/// routine.
fn compress_multi<const N: usize>(states: &mut [[u32; 4]; N], blocks: &[&[u8; 64]; N]) {
    let mut m = [[0u32; 16]; N];
    for (lane, block) in blocks.iter().enumerate() {
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[lane][i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    let mut a: [u32; N] = std::array::from_fn(|l| states[l][0]);
    let mut b: [u32; N] = std::array::from_fn(|l| states[l][1]);
    let mut c: [u32; N] = std::array::from_fn(|l| states[l][2]);
    let mut d: [u32; N] = std::array::from_fn(|l| states[l][3]);
    for i in 0..64 {
        let g = match i / 16 {
            0 => i,
            1 => (5 * i + 1) % 16,
            2 => (3 * i + 5) % 16,
            _ => (7 * i) % 16,
        };
        for l in 0..N {
            let f = match i / 16 {
                0 => (b[l] & c[l]) | (!b[l] & d[l]),
                1 => (d[l] & b[l]) | (!d[l] & c[l]),
                2 => b[l] ^ c[l] ^ d[l],
                _ => c[l] ^ (b[l] | !d[l]),
            };
            let sum = a[l]
                .wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[l][g]);
            let nb = b[l].wrapping_add(sum.rotate_left(S[i]));
            a[l] = d[l];
            d[l] = c[l];
            c[l] = b[l];
            b[l] = nb;
        }
    }
    for l in 0..N {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
    }
}

/// Merkle–Damgård padding layout shared by MD5 and SHA-1: returns the
/// number of tail blocks (1 or 2) and the two staged 64-byte blocks with
/// the `0x80` marker placed after `rem` remainder bytes. The caller
/// writes the 8-byte length word (LE for MD5, BE for SHA-1).
pub(crate) fn pad_tail(rem: &[u8]) -> (usize, [u8; 128]) {
    debug_assert!(rem.len() < 64);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let blocks = if rem.len() >= 56 { 2 } else { 1 };
    (blocks, tail)
}

/// Computes the MD5 digest of `data` in one shot.
///
/// Full blocks are compressed directly from `data` (no staging buffer);
/// only the final padded block(s) are staged.
///
/// # Examples
///
/// ```
/// use miv_hash::md5::md5;
///
/// assert_eq!(md5(b"").to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
/// ```
pub fn md5(data: &[u8]) -> Digest {
    let mut state = INIT;
    let mut blocks = data.chunks_exact(64);
    for block in blocks.by_ref() {
        compress(&mut state, block.try_into().expect("64-byte chunk"));
    }
    let (tail_blocks, mut tail) = pad_tail(blocks.remainder());
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_le_bytes());
    for t in 0..tail_blocks {
        compress(
            &mut state,
            tail[t * 64..t * 64 + 64].try_into().expect("64"),
        );
    }
    state_digest(&state)
}

/// Digests `N` equal-length messages through the interleaved multi-lane
/// compression, returning one digest per lane.
///
/// Equal lengths keep every lane on the same block schedule (including
/// the padding blocks), which is exactly the shape the integrity tree's
/// batched flush produces: same-geometry chunk images. For mixed-length
/// batches use [`ChunkHasher::digest_batch`](crate::ChunkHasher), which
/// buckets messages by length so equal-length messages share a lane
/// group wherever they sit in the batch.
///
/// # Panics
///
/// Panics if the messages are not all the same length.
///
/// # Examples
///
/// ```
/// use miv_hash::md5::{md5, md5_multi};
///
/// let out = md5_multi(&[b"aaaa", b"bbbb", b"cccc", b"dddd"]);
/// assert_eq!(out[2], md5(b"cccc"));
/// ```
pub fn md5_multi<const N: usize>(msgs: &[&[u8]; N]) -> [Digest; N] {
    let len = msgs[0].len();
    assert!(
        msgs.iter().all(|m| m.len() == len),
        "md5_multi lanes must be equal length"
    );
    let mut states = [INIT; N];
    let full = len / 64;
    for blk in 0..full {
        let blocks: [&[u8; 64]; N] =
            std::array::from_fn(|l| msgs[l][blk * 64..blk * 64 + 64].try_into().expect("64"));
        compress_multi(&mut states, &blocks);
    }
    let bit_len = (len as u64).wrapping_mul(8);
    let mut tails = [[0u8; 128]; N];
    let mut tail_blocks = 1;
    for (lane, tail) in tails.iter_mut().enumerate() {
        let (blocks, mut staged) = pad_tail(&msgs[lane][full * 64..]);
        staged[blocks * 64 - 8..blocks * 64].copy_from_slice(&bit_len.to_le_bytes());
        *tail = staged;
        tail_blocks = blocks;
    }
    for t in 0..tail_blocks {
        let blocks: [&[u8; 64]; N] =
            std::array::from_fn(|l| tails[l][t * 64..t * 64 + 64].try_into().expect("64"));
        compress_multi(&mut states, &blocks);
    }
    std::array::from_fn(|l| state_digest(&states[l]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(md5(input).to_hex(), *want, "md5({:?})", input);
        }
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..200u16).map(|i| (i * 7 + 3) as u8).collect();
        let want = md5(&data);
        for split in 0..data.len() {
            let mut ctx = Md5::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths straddling padding boundaries (55/56/57, 63/64/65, 119/120).
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let d1 = md5(&data);
            let mut ctx = Md5::new();
            for byte in &data {
                ctx.update(std::slice::from_ref(byte));
            }
            assert_eq!(ctx.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let a = md5(b"chunk-0");
        let b = md5(b"chunk-1");
        assert_ne!(a, b);
    }

    #[test]
    fn million_a() {
        // Classic extended vector: one million repetitions of "a".
        let mut ctx = Md5::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            ctx.update(&block);
        }
        assert_eq!(ctx.finalize().to_hex(), "7707d6ae4e027c70eea2a935c2296f21");
    }

    #[test]
    fn multi_lane_matches_scalar_across_padding_boundaries() {
        // Lengths on both sides of every padding layout: 0 (empty), short
        // tail, 55/56/57 (one vs two tail blocks), exact block multiples,
        // and multi-block messages.
        for len in [0usize, 1, 7, 55, 56, 57, 63, 64, 65, 119, 120, 128, 200] {
            let msgs: Vec<Vec<u8>> = (0..4u8)
                .map(|lane| (0..len).map(|i| (i as u8).wrapping_mul(lane + 3)).collect())
                .collect();
            let refs: [&[u8]; 4] = std::array::from_fn(|l| &msgs[l][..]);
            let got = md5_multi(&refs);
            for lane in 0..4 {
                assert_eq!(got[lane], md5(&msgs[lane]), "len {len} lane {lane}");
            }
        }
    }

    #[test]
    fn multi_lane_other_widths() {
        let m = b"The quick brown fox jumps over the lazy dog";
        assert_eq!(md5_multi(&[&m[..]]), [md5(m)]);
        let eight: [&[u8]; 8] = [&m[..]; 8];
        for d in md5_multi(&eight) {
            assert_eq!(d, md5(m));
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn multi_lane_rejects_ragged_input() {
        md5_multi(&[&b"aa"[..], &b"bbb"[..]]);
    }
}
