//! The incremental XOR-MAC with one-bit timestamps (§5.4).
//!
//! The *ihash* scheme replaces a chunk's hash with a MAC that can be
//! updated when a single cache block changes, without reading the other
//! blocks of the chunk. Following Bellare, Guérin and Rogaway's XOR-MAC:
//!
//! ```text
//! M_k(m_1, …, m_n) = E_k( h_k(1, m_1, b_1) ⊕ … ⊕ h_k(n, m_n, b_n) )
//! ```
//!
//! where `h_k` is a keyed PRF over `(block index, block data, timestamp
//! bit)` and `E_k` is an invertible pseudo-random permutation. Given a MAC
//! value, a single block change is applied by decrypting, XOR-ing out the
//! old `h_k` term, XOR-ing in the new one, and re-encrypting.
//!
//! The paper's one-bit **timestamp** per block defeats the two replay
//! attacks of §5.4: because the bit flips on every write-back, the
//! adversary can no longer arrange for an old `h_k` term to cancel a new
//! one. [`XorMac`] stores the bit as part of the PRF input; the tree core
//! stores the current bit next to the MAC in the parent chunk.
//!
//! # Examples
//!
//! ```
//! use miv_hash::XorMac;
//!
//! let mac = XorMac::new([3u8; 16]);
//! let blocks: [&[u8]; 2] = [b"block zero data!", b"block one data!!"];
//! let ts = [false, false];
//! let tag = mac.mac_blocks(blocks.iter().copied().zip(ts.iter().copied()));
//!
//! // O(1) update of block 1, flipping its timestamp:
//! let tag2 = mac.update(tag, 1, (blocks[1], false), (b"block one v2!!!!", true));
//! let expect = mac.mac_blocks([(&b"block zero data!"[..], false),
//!                              (&b"block one v2!!!!"[..], true)]);
//! assert_eq!(tag2, expect);
//! ```

use crate::digest::Digest;
use crate::md5::Md5;
use crate::prp::BlockPrp;
use crate::xtea::Prp128;

/// Domain-separation tag mixed into every PRF call.
const DOMAIN: &[u8; 8] = b"miv-xmac";

/// An incremental XOR-MAC over the blocks of a chunk.
///
/// Generic over the outer permutation `E_k`: the default is the
/// XTEA-based [`Prp128`]; [`XorMac::with_aes`] selects AES-128.
///
/// Cloneable; all methods are `&self`.
#[derive(Debug, Clone)]
pub struct XorMac<P = Prp128> {
    key: [u8; 16],
    prp: P,
}

/// Derives the (domain-separated) PRP key from the MAC key.
fn prp_key_of(key: [u8; 16]) -> [u8; 16] {
    let mut prp_key = key;
    for (i, b) in prp_key.iter_mut().enumerate() {
        *b ^= 0xc3u8.rotate_left(i as u32);
    }
    prp_key
}

impl XorMac<Prp128> {
    /// Creates a MAC instance from a 128-bit key, with the default
    /// XTEA-based permutation.
    ///
    /// The same key is used (with domain separation) for the per-block PRF
    /// and for the outer permutation.
    pub fn new(key: [u8; 16]) -> Self {
        XorMac {
            key,
            prp: Prp128::new(prp_key_of(key)),
        }
    }
}

impl XorMac<crate::aes::Aes128> {
    /// Creates a MAC instance whose outer permutation is AES-128.
    pub fn with_aes(key: [u8; 16]) -> Self {
        XorMac {
            key,
            prp: crate::aes::Aes128::new(prp_key_of(key)),
        }
    }
}

impl<P: BlockPrp> XorMac<P> {
    /// Creates a MAC instance over an explicit permutation.
    pub fn with_cipher(key: [u8; 16], prp: P) -> Self {
        XorMac { key, prp }
    }

    /// The keyed PRF `h_k(index, block, timestamp)`.
    ///
    /// Implemented as `MD5(key ‖ domain ‖ index ‖ timestamp ‖ block)`; the
    /// key-prefixed construction is adequate as a PRF for fixed-length
    /// inputs (all blocks of a chunk have the same size).
    pub fn block_prf(&self, index: u64, block: &[u8], timestamp: bool) -> Digest {
        let mut ctx = Md5::new();
        ctx.update(&self.key);
        ctx.update(DOMAIN);
        ctx.update(&index.to_le_bytes());
        ctx.update(&[timestamp as u8]);
        ctx.update(block);
        ctx.finalize()
    }

    /// Computes the MAC over a chunk's blocks from scratch.
    ///
    /// `blocks` yields `(block data, timestamp bit)` pairs in block order.
    /// All blocks of a chunk must be present; the order defines the index
    /// fed to the PRF.
    pub fn mac_blocks<'a, I>(&self, blocks: I) -> Digest
    where
        I: IntoIterator<Item = (&'a [u8], bool)>,
    {
        let mut acc = Digest::ZERO;
        for (index, (block, ts)) in blocks.into_iter().enumerate() {
            acc ^= self.block_prf(index as u64, block, ts);
        }
        Digest::from_bytes(self.prp.encrypt_block(acc.into_bytes()))
    }

    /// Applies a single-block change to an existing MAC in O(1).
    ///
    /// `old` is the block's previous `(data, timestamp)`, `new` its
    /// replacement. This is the write-back fast path of the *ihash* scheme:
    /// the other blocks of the chunk are not needed.
    #[must_use]
    pub fn update(
        &self,
        mac: Digest,
        index: u64,
        old: (&[u8], bool),
        new: (&[u8], bool),
    ) -> Digest {
        let mut inner = Digest::from_bytes(self.prp.decrypt_block(mac.into_bytes()));
        inner ^= self.block_prf(index, old.0, old.1);
        inner ^= self.block_prf(index, new.0, new.1);
        Digest::from_bytes(self.prp.encrypt_block(inner.into_bytes()))
    }

    /// Verifies that `mac` matches the given blocks.
    pub fn verify<'a, I>(&self, mac: Digest, blocks: I) -> bool
    where
        I: IntoIterator<Item = (&'a [u8], bool)>,
    {
        self.mac_blocks(blocks) == mac
    }
}

/// The per-block metadata stored beside a MAC in the parent chunk: the
/// one-bit timestamps of each block (§5.4).
///
/// A compact bitset over up to 64 blocks per chunk (far beyond the paper's
/// 2–4 blocks per chunk).
///
/// # Examples
///
/// ```
/// use miv_hash::xormac::Timestamps;
///
/// let mut ts = Timestamps::new(4);
/// assert!(!ts.get(2));
/// ts.flip(2);
/// assert!(ts.get(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Timestamps {
    bits: u64,
    len: u8,
}

impl Timestamps {
    /// Creates `len` timestamp bits, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn new(len: usize) -> Self {
        assert!(len <= 64, "at most 64 blocks per chunk supported");
        Timestamps {
            bits: 0,
            len: len as u8,
        }
    }

    /// Number of timestamp bits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if there are no timestamp bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len(), "timestamp index out of range");
        (self.bits >> index) & 1 == 1
    }

    /// Flips bit `index` (the write-back action) and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn flip(&mut self, index: usize) -> bool {
        assert!(index < self.len(), "timestamp index out of range");
        self.bits ^= 1 << index;
        self.get(index)
    }

    /// Iterates over the bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize, stamp: u8) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![stamp ^ i as u8; 64]).collect()
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mac = XorMac::new([0x11u8; 16]);
        let data = blocks(4, 0xaa);
        let mut ts = Timestamps::new(4);
        let tag = mac.mac_blocks(data.iter().map(|b| b.as_slice()).zip(ts.iter()));

        // Rewrite block 2, flipping its timestamp.
        let new_block = vec![0x77u8; 64];
        let old_ts = ts.get(2);
        let new_ts = ts.flip(2);
        let updated = mac.update(tag, 2, (&data[2], old_ts), (&new_block, new_ts));

        let mut data2 = data.clone();
        data2[2] = new_block;
        let recomputed = mac.mac_blocks(data2.iter().map(|b| b.as_slice()).zip(ts.iter()));
        assert_eq!(updated, recomputed);
    }

    #[test]
    fn update_then_revert_restores_tag() {
        let mac = XorMac::new([0x42u8; 16]);
        let data = blocks(2, 0x01);
        let tag = mac.mac_blocks(data.iter().map(|b| (b.as_slice(), false)));
        let new = vec![9u8; 64];
        let t1 = mac.update(tag, 0, (&data[0], false), (&new, true));
        let t2 = mac.update(t1, 0, (&new, true), (&data[0], false));
        assert_eq!(t2, tag);
        assert_ne!(t1, tag);
    }

    #[test]
    fn timestamp_bit_changes_mac() {
        let mac = XorMac::new([7u8; 16]);
        let data = blocks(2, 0);
        let a = mac.mac_blocks(data.iter().map(|b| (b.as_slice(), false)));
        let b = mac.mac_blocks(
            data.iter()
                .enumerate()
                .map(|(i, blk)| (blk.as_slice(), i == 0)),
        );
        assert_ne!(a, b, "flipping a timestamp must change the MAC");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = XorMac::new([3u8; 16]);
        let data = blocks(3, 0x10);
        let tag = mac.mac_blocks(data.iter().map(|b| (b.as_slice(), false)));
        assert!(mac.verify(tag, data.iter().map(|b| (b.as_slice(), false))));
        let mut tampered = data.clone();
        tampered[1][5] ^= 1;
        assert!(!mac.verify(tag, tampered.iter().map(|b| (b.as_slice(), false))));
    }

    /// The §5.4 attack the timestamps defeat: with the bit flipping on
    /// every write-back, a stale block no longer verifies even when the
    /// adversary predicted the new value correctly.
    #[test]
    fn replay_with_stale_block_is_rejected() {
        let mac = XorMac::new([0x99u8; 16]);
        let old = vec![1u8; 64];
        let new = vec![2u8; 64];
        let sibling = vec![3u8; 64];
        // Initial chunk {old, sibling}, timestamps {0, 0}.
        let tag0 = mac.mac_blocks([(old.as_slice(), false), (sibling.as_slice(), false)]);
        // Legitimate write-back of block 0 flips its timestamp.
        let tag1 = mac.update(tag0, 0, (&old, false), (&new, true));
        // Adversary replays the *old* data for block 0. Without timestamps
        // this could be arranged to cancel; with them it never verifies.
        assert!(!mac.verify(tag1, [(old.as_slice(), false), (sibling.as_slice(), false)]));
        assert!(!mac.verify(tag1, [(old.as_slice(), true), (sibling.as_slice(), false)]));
        // The genuine state verifies.
        assert!(mac.verify(tag1, [(new.as_slice(), true), (sibling.as_slice(), false)]));
    }

    #[test]
    fn aes_variant_has_the_same_algebra() {
        let mac = XorMac::with_aes([0x31u8; 16]);
        let data = blocks(3, 0x42);
        let mut ts = Timestamps::new(3);
        let tag = mac.mac_blocks(data.iter().map(|b| b.as_slice()).zip(ts.iter()));
        let new_block = vec![0x55u8; 64];
        let old_ts = ts.get(1);
        let new_ts = ts.flip(1);
        let upd = mac.update(tag, 1, (&data[1], old_ts), (&new_block, new_ts));
        let mut data2 = data.clone();
        data2[1] = new_block;
        let want = mac.mac_blocks(data2.iter().map(|b| b.as_slice()).zip(ts.iter()));
        assert_eq!(upd, want);
        // ...and it differs from the XTEA variant's tags.
        let xtea = XorMac::new([0x31u8; 16]);
        assert_ne!(
            tag,
            xtea.mac_blocks(data.iter().map(|b| b.as_slice()).zip([false, false, false]))
        );
    }

    #[test]
    fn keys_separate_tags() {
        let a = XorMac::new([1u8; 16]);
        let b = XorMac::new([2u8; 16]);
        let data = blocks(2, 0x55);
        let ta = a.mac_blocks(data.iter().map(|blk| (blk.as_slice(), false)));
        let tb = b.mac_blocks(data.iter().map(|blk| (blk.as_slice(), false)));
        assert_ne!(ta, tb);
    }

    #[test]
    fn timestamps_bitset() {
        let mut ts = Timestamps::new(8);
        assert_eq!(ts.len(), 8);
        assert!(!ts.is_empty());
        assert!(Timestamps::new(0).is_empty());
        for i in 0..8 {
            assert!(!ts.get(i));
        }
        assert!(ts.flip(3));
        assert!(ts.get(3));
        assert!(!ts.flip(3));
        let collected: Vec<bool> = ts.iter().collect();
        assert_eq!(collected, vec![false; 8]);
    }

    #[test]
    #[should_panic(expected = "timestamp index out of range")]
    fn timestamps_bounds_checked() {
        let ts = Timestamps::new(2);
        ts.get(2);
    }
}
