//! The SHA-256 secure hash algorithm (FIPS 180-4).
//!
//! SHA-256 is the modern default hash in every contemporary integrity
//! system, and the natural third hash unit next to the paper's MD5 and
//! SHA-1 (§6.2). A 512-bit block is digested into 256 bits over 64
//! rounds. The integrity tree uses 128-bit digests (Table 1, "hash
//! length 128 bits"), so [`Sha256Hasher`](crate::digest::Sha256Hasher)
//! truncates the output; the raw 32-byte digest is available from
//! [`Sha256::finalize`].

/// Initial state H0..H7 (fractional parts of the square roots of the
/// first eight primes).
const INIT: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants K0..K63 (fractional parts of the cube roots of the
/// first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A streaming SHA-256 context.
///
/// # Examples
///
/// ```
/// use miv_hash::sha256::Sha256;
///
/// let mut ctx = Sha256::new();
/// ctx.update(b"abc");
/// assert_eq!(
///     Sha256::to_hex(&ctx.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh SHA-256 context.
    pub fn new() -> Self {
        Sha256 {
            state: INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                compress(&mut self.state, &{ self.buf });
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            compress(&mut self.state, block.try_into().expect("64-byte split"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the digest, returning the full 32-byte value.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        compress(&mut self.state, &{ self.buf });

        state_digest(&self.state)
    }

    /// Renders a 32-byte digest as lowercase hex.
    pub fn to_hex(digest: &[u8; 32]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// Serializes a SHA-256 state into the big-endian 256-bit digest.
fn state_digest(state: &[u32; 8]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One 512-bit compression step on a bare state.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut lanes = [*state];
    compress_multi(&mut lanes, &[block]);
    *state = lanes[0];
}

/// One 512-bit compression step across `N` independent lanes (see
/// [`md5`](crate::md5) for the interleaving rationale). SHA-256 keeps
/// eight state words live per lane — twice MD5's four — so its
/// profitable lane count is narrower; the per-algorithm
/// [`batch_lanes`](crate::ChunkHasher::batch_lanes) widths track that.
fn compress_multi<const N: usize>(states: &mut [[u32; 8]; N], blocks: &[&[u8; 64]; N]) {
    let mut w = [[0u32; 64]; N];
    for (lane, block) in blocks.iter().enumerate() {
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[lane][i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[lane][i - 15].rotate_right(7)
                ^ w[lane][i - 15].rotate_right(18)
                ^ (w[lane][i - 15] >> 3);
            let s1 = w[lane][i - 2].rotate_right(17)
                ^ w[lane][i - 2].rotate_right(19)
                ^ (w[lane][i - 2] >> 10);
            w[lane][i] = w[lane][i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[lane][i - 7])
                .wrapping_add(s1);
        }
    }
    let mut a: [u32; N] = std::array::from_fn(|l| states[l][0]);
    let mut b: [u32; N] = std::array::from_fn(|l| states[l][1]);
    let mut c: [u32; N] = std::array::from_fn(|l| states[l][2]);
    let mut d: [u32; N] = std::array::from_fn(|l| states[l][3]);
    let mut e: [u32; N] = std::array::from_fn(|l| states[l][4]);
    let mut f: [u32; N] = std::array::from_fn(|l| states[l][5]);
    let mut g: [u32; N] = std::array::from_fn(|l| states[l][6]);
    let mut h: [u32; N] = std::array::from_fn(|l| states[l][7]);
    // The round counter indexes K AND every lane's schedule; an
    // enumerate over one lane's `w` would misread the lockstep shape.
    #[allow(clippy::needless_range_loop)]
    for i in 0..64 {
        for l in 0..N {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            let t1 = h[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[l][i]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            let t2 = s0.wrapping_add(maj);
            h[l] = g[l];
            g[l] = f[l];
            f[l] = e[l];
            e[l] = d[l].wrapping_add(t1);
            d[l] = c[l];
            c[l] = b[l];
            b[l] = a[l];
            a[l] = t1.wrapping_add(t2);
        }
    }
    for l in 0..N {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
        states[l][5] = states[l][5].wrapping_add(f[l]);
        states[l][6] = states[l][6].wrapping_add(g[l]);
        states[l][7] = states[l][7].wrapping_add(h[l]);
    }
}

/// Computes the SHA-256 digest of `data` in one shot.
///
/// Full blocks are compressed directly from `data` (no staging buffer);
/// only the final padded block(s) are staged.
///
/// # Examples
///
/// ```
/// use miv_hash::sha256::{sha256, Sha256};
///
/// let d = sha256(b"");
/// assert_eq!(
///     Sha256::to_hex(&d),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
/// );
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = INIT;
    let mut blocks = data.chunks_exact(64);
    for block in blocks.by_ref() {
        compress(&mut state, block.try_into().expect("64-byte chunk"));
    }
    let (tail_blocks, mut tail) = crate::md5::pad_tail(blocks.remainder());
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    for t in 0..tail_blocks {
        compress(
            &mut state,
            tail[t * 64..t * 64 + 64].try_into().expect("64"),
        );
    }
    state_digest(&state)
}

/// Digests `N` equal-length messages through the interleaved multi-lane
/// compression, returning one 32-byte digest per lane.
///
/// # Panics
///
/// Panics if the messages are not all the same length.
///
/// # Examples
///
/// ```
/// use miv_hash::sha256::{sha256, sha256_multi};
///
/// let out = sha256_multi(&[b"aaaa", b"bbbb"]);
/// assert_eq!(out[1], sha256(b"bbbb"));
/// ```
pub fn sha256_multi<const N: usize>(msgs: &[&[u8]; N]) -> [[u8; 32]; N] {
    let len = msgs[0].len();
    assert!(
        msgs.iter().all(|m| m.len() == len),
        "sha256_multi lanes must be equal length"
    );
    let mut states = [INIT; N];
    let full = len / 64;
    for blk in 0..full {
        let blocks: [&[u8; 64]; N] =
            std::array::from_fn(|l| msgs[l][blk * 64..blk * 64 + 64].try_into().expect("64"));
        compress_multi(&mut states, &blocks);
    }
    let bit_len = (len as u64).wrapping_mul(8);
    let mut tails = [[0u8; 128]; N];
    let mut tail_blocks = 1;
    for (lane, tail) in tails.iter_mut().enumerate() {
        let (blocks, mut staged) = crate::md5::pad_tail(&msgs[lane][full * 64..]);
        staged[blocks * 64 - 8..blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
        *tail = staged;
        tail_blocks = blocks;
    }
    for t in 0..tail_blocks {
        let blocks: [&[u8; 64]; N] =
            std::array::from_fn(|l| tails[l][t * 64..t * 64 + 64].try_into().expect("64"));
        compress_multi(&mut states, &blocks);
    }
    std::array::from_fn(|l| state_digest(&states[l]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST test vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(Sha256::to_hex(&sha256(input)), *want, "sha256({:?})", input);
        }
    }

    #[test]
    fn million_a() {
        let mut ctx = Sha256::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            ctx.update(&block);
        }
        assert_eq!(
            Sha256::to_hex(&ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..150u16).map(|i| (i * 13 + 1) as u8).collect();
        let want = sha256(&data);
        for split in 0..data.len() {
            let mut ctx = Sha256::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn multi_lane_matches_scalar_across_padding_boundaries() {
        for len in [0usize, 1, 7, 55, 56, 57, 63, 64, 65, 119, 120, 128, 200] {
            let msgs: Vec<Vec<u8>> = (0..4u8)
                .map(|lane| (0..len).map(|i| (i as u8).wrapping_mul(lane + 5)).collect())
                .collect();
            let refs: [&[u8]; 4] = std::array::from_fn(|l| &msgs[l][..]);
            let got = sha256_multi(&refs);
            for lane in 0..4 {
                assert_eq!(got[lane], sha256(&msgs[lane]), "len {len} lane {lane}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn multi_lane_rejects_ragged_input() {
        sha256_multi(&[&b"aa"[..], &b"bbb"[..]]);
    }

    #[test]
    fn padding_boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65] {
            let data = vec![0x5au8; len];
            let one = sha256(&data);
            let mut ctx = Sha256::new();
            for b in &data {
                ctx.update(std::slice::from_ref(b));
            }
            assert_eq!(ctx.finalize(), one, "len {len}");
        }
    }
}
