//! A 120-bit PRP and XOR-MAC for the *ihash* scheme's parent slots.
//!
//! The paper stores "a one-bit timestamp for each cache block along with
//! the MAC in the parent chunk" (§5.4) without spelling out the bit
//! layout. We keep the tree geometry untouched — every parent slot stays
//! 16 bytes, so the arity is unchanged — by narrowing the MAC to
//! **120 bits** and packing up to eight timestamp bits into the slot's
//! final byte:
//!
//! ```text
//! slot[0..15] = 120-bit incremental XOR-MAC
//! slot[15]    = timestamp bits (block i of the chunk → bit i)
//! ```
//!
//! The XOR-MAC algebra (decrypt → XOR old term out → XOR new term in →
//! encrypt) must hold *exactly*, so truncating a 128-bit MAC is not an
//! option; instead [`Prp120`] is a dedicated 120-bit permutation — a
//! four-round balanced Feistel over two 60-bit halves with XTEA-based
//! round PRFs — and [`XorMac120`] runs the Bellare–Guérin–Rogaway
//! construction natively in the 120-bit space.

use crate::md5::Md5;
use crate::xtea::Xtea;

/// Width of the narrow MAC in bytes (120 bits).
pub const NARROW_MAC_BYTES: usize = 15;

/// A 120-bit MAC value.
pub type Mac120 = [u8; NARROW_MAC_BYTES];

const MASK60: u64 = (1 << 60) - 1;

/// A 120-bit pseudo-random permutation (balanced Feistel over 60-bit
/// halves, four rounds, XTEA round PRFs).
///
/// # Examples
///
/// ```
/// use miv_hash::narrow::Prp120;
///
/// let prp = Prp120::new([1u8; 16]);
/// let x = [7u8; 15];
/// assert_eq!(prp.decrypt(prp.encrypt(x)), x);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Prp120 {
    rounds: [Xtea; 4],
}

impl Prp120 {
    /// Derives the four round ciphers from a 128-bit master key.
    pub fn new(key: [u8; 16]) -> Self {
        let make = |round: u8| {
            let mut k = key;
            for (i, byte) in k.iter_mut().enumerate() {
                *byte = byte
                    .wrapping_mul(2 * round + 1)
                    .wrapping_add(0x3b ^ round)
                    .rotate_left(((i + round as usize) % 8) as u32);
            }
            Xtea::new(k)
        };
        Prp120 {
            rounds: [make(1), make(2), make(3), make(4)],
        }
    }

    /// The 60-bit round PRF.
    fn prf(cipher: &Xtea, half: u64, round: u32) -> u64 {
        let ct = cipher.encrypt_block([
            (half as u32) ^ round,
            ((half >> 32) as u32) ^ round.rotate_left(13),
        ]);
        (((ct[1] as u64) << 32) | ct[0] as u64) & MASK60
    }

    /// Encrypts a 120-bit value.
    pub fn encrypt(&self, block: Mac120) -> Mac120 {
        let (mut left, mut right) = unpack(block);
        for (i, cipher) in self.rounds.iter().enumerate() {
            let f = Self::prf(cipher, right, i as u32);
            let new_right = left ^ f;
            left = right;
            right = new_right;
        }
        pack(left, right)
    }

    /// Decrypts a 120-bit value.
    pub fn decrypt(&self, block: Mac120) -> Mac120 {
        let (mut left, mut right) = unpack(block);
        for (i, cipher) in self.rounds.iter().enumerate().rev() {
            let f = Self::prf(cipher, left, i as u32);
            let new_left = right ^ f;
            right = left;
            left = new_left;
        }
        pack(left, right)
    }
}

/// Splits 15 bytes into two 60-bit halves.
fn unpack(block: Mac120) -> (u64, u64) {
    let mut lo = [0u8; 8];
    lo.copy_from_slice(&block[0..8]);
    let mut hi = [0u8; 8];
    hi[..7].copy_from_slice(&block[8..15]);
    let lo = u64::from_le_bytes(lo);
    let hi = u64::from_le_bytes(hi);
    // 64 + 56 bits → left = low 60, right = remaining 60.
    let left = lo & MASK60;
    let right = (lo >> 60) | (hi << 4) & MASK60;
    (left, right & MASK60)
}

/// Packs two 60-bit halves into 15 bytes.
fn pack(left: u64, right: u64) -> Mac120 {
    let lo = (left & MASK60) | (right << 60);
    let hi = right >> 4;
    let mut out = [0u8; NARROW_MAC_BYTES];
    out[0..8].copy_from_slice(&lo.to_le_bytes());
    out[8..15].copy_from_slice(&hi.to_le_bytes()[..7]);
    out
}

/// The 120-bit incremental XOR-MAC with one-bit timestamps.
///
/// Mirrors [`XorMac`](crate::XorMac) but natively 120 bits wide so a MAC
/// plus eight timestamp bits fit in a 16-byte tree slot.
///
/// # Examples
///
/// ```
/// use miv_hash::narrow::XorMac120;
///
/// let mac = XorMac120::new([9u8; 16]);
/// let blocks: [&[u8]; 2] = [&[1u8; 64], &[2u8; 64]];
/// let tag = mac.mac_blocks(blocks.iter().copied().zip([false, false]));
/// let tag2 = mac.update(tag, 1, (blocks[1], false), (&[3u8; 64], true));
/// assert_eq!(
///     tag2,
///     mac.mac_blocks([(&[1u8; 64][..], false), (&[3u8; 64][..], true)]),
/// );
/// ```
#[derive(Debug, Clone, Copy)]
pub struct XorMac120 {
    key: [u8; 16],
    prp: Prp120,
}

impl XorMac120 {
    /// Creates a MAC instance from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        let mut prp_key = key;
        for (i, b) in prp_key.iter_mut().enumerate() {
            *b ^= 0xa7u8.rotate_left((i % 8) as u32);
        }
        XorMac120 {
            key,
            prp: Prp120::new(prp_key),
        }
    }

    /// The keyed PRF `h_k(index, block, timestamp)`, 120 bits wide.
    pub fn block_prf(&self, index: u64, block: &[u8], timestamp: bool) -> Mac120 {
        let mut ctx = Md5::new();
        ctx.update(&self.key);
        ctx.update(b"miv-x120");
        ctx.update(&index.to_le_bytes());
        ctx.update(&[timestamp as u8]);
        ctx.update(block);
        let full = ctx.finalize().into_bytes();
        let mut out = [0u8; NARROW_MAC_BYTES];
        out.copy_from_slice(&full[..NARROW_MAC_BYTES]);
        out
    }

    /// Computes the MAC over a chunk's blocks from scratch.
    pub fn mac_blocks<'a, I>(&self, blocks: I) -> Mac120
    where
        I: IntoIterator<Item = (&'a [u8], bool)>,
    {
        let mut acc = [0u8; NARROW_MAC_BYTES];
        for (index, (block, ts)) in blocks.into_iter().enumerate() {
            xor_into(&mut acc, &self.block_prf(index as u64, block, ts));
        }
        self.prp.encrypt(acc)
    }

    /// Applies a single-block change to an existing MAC in O(1).
    #[must_use]
    pub fn update(
        &self,
        mac: Mac120,
        index: u64,
        old: (&[u8], bool),
        new: (&[u8], bool),
    ) -> Mac120 {
        let mut inner = self.prp.decrypt(mac);
        xor_into(&mut inner, &self.block_prf(index, old.0, old.1));
        xor_into(&mut inner, &self.block_prf(index, new.0, new.1));
        self.prp.encrypt(inner)
    }

    /// Verifies `mac` against the given blocks.
    pub fn verify<'a, I>(&self, mac: Mac120, blocks: I) -> bool
    where
        I: IntoIterator<Item = (&'a [u8], bool)>,
    {
        self.mac_blocks(blocks) == mac
    }
}

fn xor_into(acc: &mut Mac120, term: &Mac120) {
    for (a, t) in acc.iter_mut().zip(term.iter()) {
        *a ^= t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prp_roundtrip_and_permutation() {
        let prp = Prp120::new(*b"narrow-prp-key!!");
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u32 {
            let mut block = [0u8; 15];
            block[0..4].copy_from_slice(&i.to_le_bytes());
            block[11..15].copy_from_slice(&(i ^ 0xdead_beef).to_le_bytes());
            let ct = prp.encrypt(block);
            assert_eq!(prp.decrypt(ct), block, "roundtrip {i}");
            assert!(seen.insert(ct), "collision at {i}");
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for i in 0..200u64 {
            let mut block = [0u8; 15];
            block[0..8].copy_from_slice(&(i.wrapping_mul(0x9e3779b97f4a7c15)).to_le_bytes());
            block[8..15].copy_from_slice(&(i.wrapping_mul(0xc2b2ae3d27d4eb4f)).to_le_bytes()[..7]);
            let (l, r) = unpack(block);
            assert!(l <= MASK60 && r <= MASK60);
            assert_eq!(pack(l, r), block, "i={i}");
        }
    }

    #[test]
    fn prp_diffuses() {
        let prp = Prp120::new([0x5au8; 16]);
        let a = prp.encrypt([0u8; 15]);
        let mut flipped = [0u8; 15];
        flipped[0] = 1;
        let b = prp.encrypt(flipped);
        let bits: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(bits >= 30, "only {bits} bits differ");
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mac = XorMac120::new([0x21u8; 16]);
        let b0 = [0x10u8; 64];
        let b1 = vec![0x20u8; 64];
        let b2 = [0x30u8; 64];
        let tag = mac.mac_blocks([(&b0[..], false), (&b1[..], true), (&b2[..], false)]);
        let nb1 = vec![0x99u8; 64];
        let upd = mac.update(tag, 1, (&b1, true), (&nb1, false));
        let want = mac.mac_blocks([(&b0[..], false), (&nb1[..], false), (&b2[..], false)]);
        assert_eq!(upd, want);
    }

    #[test]
    fn timestamp_defeats_replay() {
        let mac = XorMac120::new([0x44u8; 16]);
        let old = vec![1u8; 32];
        let new = vec![2u8; 32];
        let tag0 = mac.mac_blocks([(&old[..], false)]);
        let tag1 = mac.update(tag0, 0, (&old, false), (&new, true));
        assert!(!mac.verify(tag1, [(&old[..], false)]));
        assert!(!mac.verify(tag1, [(&old[..], true)]));
        assert!(mac.verify(tag1, [(&new[..], true)]));
    }

    #[test]
    fn verify_rejects_tamper() {
        let mac = XorMac120::new([8u8; 16]);
        let blocks: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64]).collect();
        let tag = mac.mac_blocks(blocks.iter().map(|b| (b.as_slice(), false)));
        assert!(mac.verify(tag, blocks.iter().map(|b| (b.as_slice(), false))));
        let mut bad = blocks.clone();
        bad[3][0] ^= 0x80;
        assert!(!mac.verify(tag, bad.iter().map(|b| (b.as_slice(), false))));
    }
}
