//! The SHA-1 secure hash algorithm (RFC 3174 / FIPS 180-1).
//!
//! SHA-1 is the paper's alternative hash unit (§6.2): a 512-bit block is
//! digested into 160 bits over 80 rounds. The integrity tree uses 128-bit
//! digests (Table 1, "hash length 128 bits"), so
//! [`Sha1Hasher`](crate::digest::Sha1Hasher) truncates the output; the raw
//! 20-byte digest is available from [`Sha1::finalize`].
//!
//! # Security
//!
//! SHA-1 is broken for collision resistance. It is implemented here because
//! the paper evaluates it; see the crate-level documentation.

/// Initial state H0..H4.
const INIT: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// A streaming SHA-1 context.
///
/// # Examples
///
/// ```
/// use miv_hash::sha1::Sha1;
///
/// let mut ctx = Sha1::new();
/// ctx.update(b"abc");
/// assert_eq!(
///     Sha1::to_hex(&ctx.finalize()),
///     "a9993e364706816aba3e25717850c26c9cd0d89d",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh SHA-1 context.
    pub fn new() -> Self {
        Sha1 {
            state: INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the digest, returning the full 20-byte value.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Renders a 20-byte digest as lowercase hex.
    pub fn to_hex(digest: &[u8; 20]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a827999),
                1 => (b ^ c ^ d, 0x6ed9eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6u32),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Computes the SHA-1 digest of `data` in one shot.
///
/// # Examples
///
/// ```
/// use miv_hash::sha1::{sha1, Sha1};
///
/// let d = sha1(b"");
/// assert_eq!(Sha1::to_hex(&d), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
/// ```
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut ctx = Sha1::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 3174 / FIPS 180-1 test vectors.
    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(Sha1::to_hex(&sha1(input)), *want, "sha1({:?})", input);
        }
    }

    #[test]
    fn million_a() {
        let mut ctx = Sha1::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            ctx.update(&block);
        }
        assert_eq!(
            Sha1::to_hex(&ctx.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..150u16).map(|i| (i * 13 + 1) as u8).collect();
        let want = sha1(&data);
        for split in 0..data.len() {
            let mut ctx = Sha1::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65] {
            let data = vec![0x5au8; len];
            let one = sha1(&data);
            let mut ctx = Sha1::new();
            for b in &data {
                ctx.update(std::slice::from_ref(b));
            }
            assert_eq!(ctx.finalize(), one, "len {len}");
        }
    }
}
