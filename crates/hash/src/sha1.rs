//! The SHA-1 secure hash algorithm (RFC 3174 / FIPS 180-1).
//!
//! SHA-1 is the paper's alternative hash unit (§6.2): a 512-bit block is
//! digested into 160 bits over 80 rounds. The integrity tree uses 128-bit
//! digests (Table 1, "hash length 128 bits"), so
//! [`Sha1Hasher`](crate::digest::Sha1Hasher) truncates the output; the raw
//! 20-byte digest is available from [`Sha1::finalize`].
//!
//! # Security
//!
//! SHA-1 is broken for collision resistance. It is implemented here because
//! the paper evaluates it; see the crate-level documentation.

/// Initial state H0..H4.
const INIT: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// A streaming SHA-1 context.
///
/// # Examples
///
/// ```
/// use miv_hash::sha1::Sha1;
///
/// let mut ctx = Sha1::new();
/// ctx.update(b"abc");
/// assert_eq!(
///     Sha1::to_hex(&ctx.finalize()),
///     "a9993e364706816aba3e25717850c26c9cd0d89d",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh SHA-1 context.
    pub fn new() -> Self {
        Sha1 {
            state: INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                compress(&mut self.state, &{ self.buf });
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            compress(&mut self.state, block.try_into().expect("64-byte split"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the digest, returning the full 20-byte value.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        compress(&mut self.state, &{ self.buf });

        state_digest(&self.state)
    }

    /// Renders a 20-byte digest as lowercase hex.
    pub fn to_hex(digest: &[u8; 20]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// Serializes a SHA-1 state into the big-endian 160-bit digest.
fn state_digest(state: &[u32; 5]) -> [u8; 20] {
    let mut out = [0u8; 20];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One 512-bit compression step on a bare state.
fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut lanes = [*state];
    compress_multi(&mut lanes, &[block]);
    *state = lanes[0];
}

/// One 512-bit compression step across `N` independent lanes (see
/// [`md5`](crate::md5) for the interleaving rationale).
fn compress_multi<const N: usize>(states: &mut [[u32; 5]; N], blocks: &[&[u8; 64]; N]) {
    let mut w = [[0u32; 80]; N];
    for (lane, block) in blocks.iter().enumerate() {
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[lane][i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[lane][i] = (w[lane][i - 3] ^ w[lane][i - 8] ^ w[lane][i - 14] ^ w[lane][i - 16])
                .rotate_left(1);
        }
    }
    let mut a: [u32; N] = std::array::from_fn(|l| states[l][0]);
    let mut b: [u32; N] = std::array::from_fn(|l| states[l][1]);
    let mut c: [u32; N] = std::array::from_fn(|l| states[l][2]);
    let mut d: [u32; N] = std::array::from_fn(|l| states[l][3]);
    let mut e: [u32; N] = std::array::from_fn(|l| states[l][4]);
    // The round counter selects k/f AND indexes every lane's schedule;
    // an enumerate over one lane's `w` would misread the lockstep shape.
    #[allow(clippy::needless_range_loop)]
    for i in 0..80 {
        let k: u32 = match i / 20 {
            0 => 0x5a827999,
            1 => 0x6ed9eba1,
            2 => 0x8f1bbcdc,
            _ => 0xca62c1d6,
        };
        for l in 0..N {
            let f = match i / 20 {
                0 => (b[l] & c[l]) | (!b[l] & d[l]),
                2 => (b[l] & c[l]) | (b[l] & d[l]) | (c[l] & d[l]),
                _ => b[l] ^ c[l] ^ d[l],
            };
            let tmp = a[l]
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e[l])
                .wrapping_add(k)
                .wrapping_add(w[l][i]);
            e[l] = d[l];
            d[l] = c[l];
            c[l] = b[l].rotate_left(30);
            b[l] = a[l];
            a[l] = tmp;
        }
    }
    for l in 0..N {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
    }
}

/// Computes the SHA-1 digest of `data` in one shot.
///
/// Full blocks are compressed directly from `data` (no staging buffer);
/// only the final padded block(s) are staged.
///
/// # Examples
///
/// ```
/// use miv_hash::sha1::{sha1, Sha1};
///
/// let d = sha1(b"");
/// assert_eq!(Sha1::to_hex(&d), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
/// ```
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut state = INIT;
    let mut blocks = data.chunks_exact(64);
    for block in blocks.by_ref() {
        compress(&mut state, block.try_into().expect("64-byte chunk"));
    }
    let (tail_blocks, mut tail) = crate::md5::pad_tail(blocks.remainder());
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    for t in 0..tail_blocks {
        compress(
            &mut state,
            tail[t * 64..t * 64 + 64].try_into().expect("64"),
        );
    }
    state_digest(&state)
}

/// Digests `N` equal-length messages through the interleaved multi-lane
/// compression, returning one 20-byte digest per lane.
///
/// # Panics
///
/// Panics if the messages are not all the same length.
///
/// # Examples
///
/// ```
/// use miv_hash::sha1::{sha1, sha1_multi};
///
/// let out = sha1_multi(&[b"aaaa", b"bbbb", b"cccc", b"dddd"]);
/// assert_eq!(out[1], sha1(b"bbbb"));
/// ```
pub fn sha1_multi<const N: usize>(msgs: &[&[u8]; N]) -> [[u8; 20]; N] {
    let len = msgs[0].len();
    assert!(
        msgs.iter().all(|m| m.len() == len),
        "sha1_multi lanes must be equal length"
    );
    let mut states = [INIT; N];
    let full = len / 64;
    for blk in 0..full {
        let blocks: [&[u8; 64]; N] =
            std::array::from_fn(|l| msgs[l][blk * 64..blk * 64 + 64].try_into().expect("64"));
        compress_multi(&mut states, &blocks);
    }
    let bit_len = (len as u64).wrapping_mul(8);
    let mut tails = [[0u8; 128]; N];
    let mut tail_blocks = 1;
    for (lane, tail) in tails.iter_mut().enumerate() {
        let (blocks, mut staged) = crate::md5::pad_tail(&msgs[lane][full * 64..]);
        staged[blocks * 64 - 8..blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
        *tail = staged;
        tail_blocks = blocks;
    }
    for t in 0..tail_blocks {
        let blocks: [&[u8; 64]; N] =
            std::array::from_fn(|l| tails[l][t * 64..t * 64 + 64].try_into().expect("64"));
        compress_multi(&mut states, &blocks);
    }
    std::array::from_fn(|l| state_digest(&states[l]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 3174 / FIPS 180-1 test vectors.
    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(Sha1::to_hex(&sha1(input)), *want, "sha1({:?})", input);
        }
    }

    #[test]
    fn million_a() {
        let mut ctx = Sha1::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            ctx.update(&block);
        }
        assert_eq!(
            Sha1::to_hex(&ctx.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..150u16).map(|i| (i * 13 + 1) as u8).collect();
        let want = sha1(&data);
        for split in 0..data.len() {
            let mut ctx = Sha1::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn multi_lane_matches_scalar_across_padding_boundaries() {
        for len in [0usize, 1, 7, 55, 56, 57, 63, 64, 65, 119, 120, 128, 200] {
            let msgs: Vec<Vec<u8>> = (0..4u8)
                .map(|lane| (0..len).map(|i| (i as u8).wrapping_mul(lane + 5)).collect())
                .collect();
            let refs: [&[u8]; 4] = std::array::from_fn(|l| &msgs[l][..]);
            let got = sha1_multi(&refs);
            for lane in 0..4 {
                assert_eq!(got[lane], sha1(&msgs[lane]), "len {len} lane {lane}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn multi_lane_rejects_ragged_input() {
        sha1_multi(&[&b"aa"[..], &b"bbb"[..]]);
    }

    #[test]
    fn padding_boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65] {
            let data = vec![0x5au8; len];
            let one = sha1(&data);
            let mut ctx = Sha1::new();
            for b in &data {
                ctx.update(std::slice::from_ref(b));
            }
            assert_eq!(ctx.finalize(), one, "len {len}");
        }
    }
}
