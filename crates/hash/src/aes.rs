//! AES-128 (FIPS-197), as an alternative `E_k` for the incremental MAC.
//!
//! The paper leaves the XOR-MAC's encryption function open; the crate's
//! default is the tiny XTEA-based Feistel ([`crate::xtea::Prp128`]), and
//! this module provides the standards-grade alternative. A software
//! table-free implementation (the S-box is a constant lookup; rounds use
//! the textbook SubBytes/ShiftRows/MixColumns/AddRoundKey pipeline) —
//! clarity over speed, which is all a simulator's functional layer needs.
//!
//! # Examples
//!
//! ```
//! use miv_hash::aes::Aes128;
//!
//! let key = *b"miv aes-128 key!";
//! let aes = Aes128::new(key);
//! let ct = aes.encrypt([0u8; 16]);
//! assert_eq!(aes.decrypt(ct), [0u8; 16]);
//! ```

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box (computed at startup from [`SBOX`]).
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// Multiplication in GF(2^8) with the AES polynomial.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// AES-128: 10 rounds, 128-bit key and block.
#[derive(Debug, Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; 11],
    inv_sbox: [u8; 256],
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                // RotWord + SubWord + Rcon.
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 {
            round_keys,
            inv_sbox: inv_sbox(),
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let mut state = block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let mut state = block;
        add_round_key(&mut state, &self.round_keys[10]);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state, &self.inv_sbox);
        for round in (1..10).rev() {
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state, &self.inv_sbox);
        }
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

// State layout: byte s[r + 4c] is row r, column c (FIPS-197 column-major).

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16], inv: &[u8; 256]) {
    for s in state.iter_mut() {
        *s = inv[*s as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
        for c in 0..4 {
            state[r + 4 * c] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
        for c in 0..4 {
            state[r + 4 * c] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hex = std::str::from_utf8(chunk).unwrap();
            out[i] = u8::from_str_radix(hex, 16).unwrap();
        }
        out
    }

    /// FIPS-197 Appendix B worked example.
    #[test]
    fn fips197_appendix_b() {
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = aes.encrypt(hex16("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    /// FIPS-197 Appendix C.1 known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let aes = Aes128::new(hex16("000102030405060708090a0b0c0d0e0f"));
        let pt = hex16("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt(pt);
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt(ct), pt);
    }

    /// NIST SP 800-38A ECB-AES128 vectors (first two blocks).
    #[test]
    fn nist_sp800_38a_ecb() {
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
        ];
        for (pt, ct) in cases {
            assert_eq!(aes.encrypt(hex16(pt)), hex16(ct));
            assert_eq!(aes.decrypt(hex16(ct)), hex16(pt));
        }
    }

    #[test]
    fn roundtrip_many() {
        let aes = Aes128::new(*b"round trip key!!");
        for i in 0..256u32 {
            let mut block = [0u8; 16];
            block[0..4].copy_from_slice(&i.to_le_bytes());
            block[12..16].copy_from_slice(&(i ^ 0xffff_ffff).to_le_bytes());
            assert_eq!(aes.decrypt(aes.encrypt(block)), block);
        }
    }

    #[test]
    fn gf_multiplication() {
        // Worked examples from FIPS-197 §4.2.
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x57, 0x02), 0xae);
        assert_eq!(gmul(0x57, 0x01), 0x57);
    }

    #[test]
    fn inverse_sbox_is_inverse() {
        let inv = inv_sbox();
        for i in 0..=255u8 {
            assert_eq!(inv[SBOX[i as usize] as usize], i);
        }
    }
}
