//! The 128-bit pseudo-random-permutation abstraction.
//!
//! The incremental XOR-MAC needs an invertible keyed permutation `E_k`;
//! this trait lets it run over the default XTEA-based Feistel
//! ([`crate::xtea::Prp128`]) or standards-grade AES-128
//! ([`crate::aes::Aes128`]) interchangeably.

use crate::aes::Aes128;
use crate::xtea::Prp128;

/// A keyed, invertible permutation over 128-bit blocks.
pub trait BlockPrp {
    /// Encrypts one block.
    fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16];

    /// Decrypts one block (the exact inverse of
    /// [`encrypt_block`](Self::encrypt_block)).
    fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16];
}

impl BlockPrp for Prp128 {
    fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        self.encrypt(block)
    }

    fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        self.decrypt(block)
    }
}

impl BlockPrp for Aes128 {
    fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        self.encrypt(block)
    }

    fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        self.decrypt(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<P: BlockPrp>(prp: &P) {
        for i in 0..64u8 {
            let block = [i; 16];
            assert_eq!(prp.decrypt_block(prp.encrypt_block(block)), block);
        }
    }

    #[test]
    fn both_ciphers_satisfy_the_contract() {
        roundtrip(&Prp128::new([7u8; 16]));
        roundtrip(&Aes128::new([7u8; 16]));
        // And they are different permutations.
        let a = Prp128::new([7u8; 16]).encrypt_block([1u8; 16]);
        let b = Aes128::new([7u8; 16]).encrypt_block([1u8; 16]);
        assert_ne!(a, b);
    }
}
