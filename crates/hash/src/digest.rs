//! The 128-bit digest value and the hashing abstraction used by the
//! integrity tree.
//!
//! The paper fixes the hash length at 128 bits (Table 1): one 64-byte
//! cache line holds four digests, giving a 4-ary tree; a 128-byte line
//! holds eight, giving an 8-ary tree.

use std::fmt;

use crate::md5::{md5, md5_multi};
use crate::sha1::{sha1, sha1_multi};

/// Size of a [`Digest`] in bytes (128 bits, per Table 1).
pub const DIGEST_BYTES: usize = 16;

/// A 128-bit digest, the unit stored in hash-tree chunks.
///
/// # Examples
///
/// ```
/// use miv_hash::Digest;
///
/// let zero = Digest::ZERO;
/// let one = Digest::from_bytes([1u8; 16]);
/// assert_ne!(zero, one);
/// assert_eq!(zero ^ one, one);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Digest([u8; DIGEST_BYTES]);

impl Digest {
    /// The all-zero digest (XOR identity).
    pub const ZERO: Digest = Digest([0u8; DIGEST_BYTES]);

    /// Wraps raw bytes as a digest.
    pub fn from_bytes(bytes: [u8; DIGEST_BYTES]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest's bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_BYTES] {
        &self.0
    }

    /// Consumes the digest, returning its bytes.
    pub fn into_bytes(self) -> [u8; DIGEST_BYTES] {
        self.0
    }

    /// Parses a digest from a 32-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] if `s` is not exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Result<Self, ParseDigestError> {
        let bytes = s.as_bytes();
        if bytes.len() != DIGEST_BYTES * 2 {
            return Err(ParseDigestError { len: bytes.len() });
        }
        let mut out = [0u8; DIGEST_BYTES];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = hex_val(pair[0]).ok_or(ParseDigestError { len: bytes.len() })?;
            let lo = hex_val(pair[1]).ok_or(ParseDigestError { len: bytes.len() })?;
            out[i] = (hi << 4) | lo;
        }
        Ok(Digest(out))
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl std::ops::BitXor for Digest {
    type Output = Digest;

    fn bitxor(self, rhs: Digest) -> Digest {
        let mut out = [0u8; DIGEST_BYTES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a ^ b;
        }
        Digest(out)
    }
}

impl std::ops::BitXorAssign for Digest {
    fn bitxor_assign(&mut self, rhs: Digest) {
        *self = *self ^ rhs;
    }
}

impl From<[u8; DIGEST_BYTES]> for Digest {
    fn from(bytes: [u8; DIGEST_BYTES]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned by [`Digest::from_hex`] for malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDigestError {
    len: usize,
}

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid digest hex string of length {}", self.len)
    }
}

impl std::error::Error for ParseDigestError {}

/// A hash function producing 128-bit chunk digests.
///
/// The integrity-tree core is generic over this trait so the tree can run
/// on MD5 (the paper's primary unit), truncated SHA-1, or any other
/// collision-resistant function.
///
/// Implementors must be deterministic: equal input slices produce equal
/// digests.
pub trait ChunkHasher: fmt::Debug {
    /// Hashes `data` into a 128-bit digest.
    fn digest(&self, data: &[u8]) -> Digest;

    /// Hashes a batch of independent messages, one digest per message,
    /// in input order.
    ///
    /// The default implementation hashes serially; the MD5 and SHA-1
    /// hashers override it to run groups of [`BATCH_LANES`] equal-length
    /// messages through an interleaved multi-lane compression (ragged
    /// groups fall back to the scalar path). Results are identical to
    /// calling [`digest`](Self::digest) per message either way.
    fn digest_batch(&self, msgs: &[&[u8]]) -> Vec<Digest> {
        msgs.iter().map(|m| self.digest(m)).collect()
    }

    /// Short human-readable algorithm name (e.g. `"md5"`).
    fn name(&self) -> &'static str;
}

/// Lane width of the interleaved multi-lane compression used by
/// [`ChunkHasher::digest_batch`].
///
/// Two lanes is the measured sweet spot on current x86-64: each MD5 lane
/// needs its 4 state words plus round inputs live, so wider interleaving
/// spills to the stack and gives back the ILP it bought (the
/// `digest_batch/*lane` cases in the `verify_hot_path` bench track
/// this). `md5_multi`/`sha1_multi` still accept any width.
pub const BATCH_LANES: usize = 2;

/// Drives `digest_batch` grouping: runs of `BATCH_LANES` equal-length
/// messages go through `multi`, everything else through `scalar`.
fn batch_by_lanes(
    msgs: &[&[u8]],
    multi: impl Fn(&[&[u8]; BATCH_LANES]) -> [Digest; BATCH_LANES],
    scalar: impl Fn(&[u8]) -> Digest,
) -> Vec<Digest> {
    let mut out = Vec::with_capacity(msgs.len());
    let mut rest = msgs;
    while rest.len() >= BATCH_LANES {
        let group: &[&[u8]; BATCH_LANES] = rest[..BATCH_LANES].try_into().expect("lane group");
        if group.iter().all(|m| m.len() == group[0].len()) {
            out.extend(multi(group));
            rest = &rest[BATCH_LANES..];
        } else {
            out.push(scalar(rest[0]));
            rest = &rest[1..];
        }
    }
    out.extend(rest.iter().map(|m| scalar(m)));
    out
}

/// MD5-based [`ChunkHasher`] (the paper's primary hash unit).
///
/// # Examples
///
/// ```
/// use miv_hash::{ChunkHasher, Md5Hasher};
///
/// let h = Md5Hasher;
/// assert_eq!(h.digest(b"abc").to_hex(), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Md5Hasher;

impl ChunkHasher for Md5Hasher {
    fn digest(&self, data: &[u8]) -> Digest {
        md5(data)
    }

    fn digest_batch(&self, msgs: &[&[u8]]) -> Vec<Digest> {
        batch_by_lanes(msgs, md5_multi, md5)
    }

    fn name(&self) -> &'static str {
        "md5"
    }
}

/// SHA-1-based [`ChunkHasher`], truncated to 128 bits.
///
/// The paper considers SHA-1 as the alternative hash unit; the tree stores
/// 128-bit values, so the 160-bit output is truncated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sha1Hasher;

impl ChunkHasher for Sha1Hasher {
    fn digest(&self, data: &[u8]) -> Digest {
        truncate(sha1(data))
    }

    fn digest_batch(&self, msgs: &[&[u8]]) -> Vec<Digest> {
        batch_by_lanes(
            msgs,
            |group| {
                let full = sha1_multi(group);
                std::array::from_fn(|l| truncate(full[l]))
            },
            |m| truncate(sha1(m)),
        )
    }

    fn name(&self) -> &'static str {
        "sha1-128"
    }
}

/// Truncates a 160-bit SHA-1 digest to the tree's 128-bit width.
fn truncate(full: [u8; 20]) -> Digest {
    let mut out = [0u8; DIGEST_BYTES];
    out.copy_from_slice(&full[..DIGEST_BYTES]);
    Digest(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let d = Digest::from_bytes([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        assert_eq!(Digest::from_hex(&d.to_hex()), Ok(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("").is_err());
        assert!(Digest::from_hex("00112233445566778899aabbccddeef").is_err()); // 31 chars
        assert!(Digest::from_hex("zz112233445566778899aabbccddeeff").is_err());
        // Error type is displayable and implements Error.
        let err = Digest::from_hex("xyz").unwrap_err();
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn xor_identity_and_involution() {
        let a = Digest::from_bytes([0x5au8; 16]);
        let b = Digest::from_bytes([0xa5u8; 16]);
        assert_eq!(a ^ Digest::ZERO, a);
        assert_eq!((a ^ b) ^ b, a);
        let mut c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
    }

    #[test]
    fn sha1_hasher_truncates() {
        let h = Sha1Hasher;
        let d = h.digest(b"abc");
        assert_eq!(d.to_hex(), "a9993e364706816aba3e25717850c26c");
    }

    #[test]
    fn hashers_differ() {
        assert_ne!(Md5Hasher.digest(b"x"), Sha1Hasher.digest(b"x"));
        assert_eq!(Md5Hasher.name(), "md5");
        assert_eq!(Sha1Hasher.name(), "sha1-128");
    }

    #[test]
    fn digest_batch_matches_serial_for_both_hashers() {
        let msgs: Vec<Vec<u8>> = (0..9usize)
            .map(|i| (0..(i * 31 % 130)).map(|b| (b as u8) ^ (i as u8)).collect())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();
        for hasher in [&Md5Hasher as &dyn ChunkHasher, &Sha1Hasher] {
            let batch = hasher.digest_batch(&refs);
            assert_eq!(batch.len(), refs.len());
            for (i, m) in refs.iter().enumerate() {
                assert_eq!(batch[i], hasher.digest(m), "{} msg {i}", hasher.name());
            }
        }
    }

    #[test]
    fn digest_batch_equal_length_groups_use_lanes() {
        // 4 + 4 + 1 equal-length messages: two full lane groups plus a
        // scalar straggler, all matching the serial result.
        let msgs: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 96]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();
        let batch = Md5Hasher.digest_batch(&refs);
        for (i, m) in refs.iter().enumerate() {
            assert_eq!(batch[i], Md5Hasher.digest(m));
        }
        assert!(Md5Hasher.digest_batch(&[]).is_empty());
    }

    #[test]
    fn digest_debug_is_nonempty() {
        let s = format!("{:?}", Digest::ZERO);
        assert!(s.contains("Digest("));
        assert_eq!(format!("{}", Digest::ZERO), "0".repeat(32));
    }
}
