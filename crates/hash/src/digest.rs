//! The 128-bit digest value and the hashing abstraction used by the
//! integrity tree.
//!
//! The paper fixes the hash length at 128 bits (Table 1): one 64-byte
//! cache line holds four digests, giving a 4-ary tree; a 128-byte line
//! holds eight, giving an 8-ary tree.

use std::collections::BTreeMap;
use std::fmt;

use crate::md5::{md5, md5_multi};
use crate::sha1::{sha1, sha1_multi};
use crate::sha256::{sha256, sha256_multi};

/// Size of a [`Digest`] in bytes (128 bits, per Table 1).
pub const DIGEST_BYTES: usize = 16;

/// A 128-bit digest, the unit stored in hash-tree chunks.
///
/// # Examples
///
/// ```
/// use miv_hash::Digest;
///
/// let zero = Digest::ZERO;
/// let one = Digest::from_bytes([1u8; 16]);
/// assert_ne!(zero, one);
/// assert_eq!(zero ^ one, one);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Digest([u8; DIGEST_BYTES]);

impl Digest {
    /// The all-zero digest (XOR identity).
    pub const ZERO: Digest = Digest([0u8; DIGEST_BYTES]);

    /// Wraps raw bytes as a digest.
    pub fn from_bytes(bytes: [u8; DIGEST_BYTES]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest's bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_BYTES] {
        &self.0
    }

    /// Consumes the digest, returning its bytes.
    pub fn into_bytes(self) -> [u8; DIGEST_BYTES] {
        self.0
    }

    /// Parses a digest from a 32-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] if `s` is not exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Result<Self, ParseDigestError> {
        let bytes = s.as_bytes();
        if bytes.len() != DIGEST_BYTES * 2 {
            return Err(ParseDigestError { len: bytes.len() });
        }
        let mut out = [0u8; DIGEST_BYTES];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = hex_val(pair[0]).ok_or(ParseDigestError { len: bytes.len() })?;
            let lo = hex_val(pair[1]).ok_or(ParseDigestError { len: bytes.len() })?;
            out[i] = (hi << 4) | lo;
        }
        Ok(Digest(out))
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl std::ops::BitXor for Digest {
    type Output = Digest;

    fn bitxor(self, rhs: Digest) -> Digest {
        let mut out = [0u8; DIGEST_BYTES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a ^ b;
        }
        Digest(out)
    }
}

impl std::ops::BitXorAssign for Digest {
    fn bitxor_assign(&mut self, rhs: Digest) {
        *self = *self ^ rhs;
    }
}

impl From<[u8; DIGEST_BYTES]> for Digest {
    fn from(bytes: [u8; DIGEST_BYTES]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned by [`Digest::from_hex`] for malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDigestError {
    len: usize,
}

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid digest hex string of length {}", self.len)
    }
}

impl std::error::Error for ParseDigestError {}

/// A hash function producing 128-bit chunk digests.
///
/// The integrity-tree core is generic over this trait so the tree can run
/// on MD5 (the paper's primary unit), truncated SHA-1, or any other
/// collision-resistant function.
///
/// Implementors must be deterministic: equal input slices produce equal
/// digests.
pub trait ChunkHasher: fmt::Debug {
    /// Hashes `data` into a 128-bit digest.
    fn digest(&self, data: &[u8]) -> Digest;

    /// Hashes a batch of independent messages, one digest per message,
    /// in input order.
    ///
    /// The default implementation hashes serially; the MD5, SHA-1 and
    /// SHA-256 hashers override it to bucket messages by length and run
    /// groups of [`batch_lanes`](Self::batch_lanes) equal-length
    /// messages through an interleaved multi-lane compression, so every
    /// pairable message is paired regardless of batch order; only the
    /// leftover of each length bucket falls back to the scalar path.
    /// Results are identical to calling [`digest`](Self::digest) per
    /// message either way.
    fn digest_batch(&self, msgs: &[&[u8]]) -> Vec<Digest> {
        msgs.iter().map(|m| self.digest(m)).collect()
    }

    /// Lane width of this algorithm's interleaved multi-lane
    /// compression: how many equal-length messages
    /// [`digest_batch`](Self::digest_batch) hashes together. `1` for
    /// the serial default implementation.
    ///
    /// The width is per-algorithm because register pressure differs:
    /// each SHA-256 lane keeps 8 state words live where MD5 keeps 4, so
    /// their profitable interleave widths are measured independently
    /// (the `digest_batch/*lane` cases in `verify_hot_path` track
    /// this).
    fn batch_lanes(&self) -> usize {
        1
    }

    /// Short human-readable algorithm name (e.g. `"md5"`).
    fn name(&self) -> &'static str;
}

/// Default lane width for batched hashing knobs (e.g. the engine's
/// flush batching): [`Md5Hasher`]'s measured sweet spot.
///
/// Two lanes is the measured sweet spot for MD5 on current x86-64: each
/// lane needs its 4 state words plus round inputs live, so wider
/// interleaving spills to the stack and gives back the ILP it bought.
/// The width is **per-algorithm** — see
/// [`ChunkHasher::batch_lanes`]: SHA-1 (5 words) also peaks at two
/// lanes, while SHA-256's 8-word state leaves it at two only because
/// its longer dependency chain still hides a second lane (the
/// `digest_batch/*lane` cases in the `verify_hot_path` bench track
/// both). `md5_multi`/`sha1_multi`/`sha256_multi` still accept any
/// width.
pub const BATCH_LANES: usize = 2;

/// Measured interleave width for SHA-256's `digest_batch` (see
/// [`BATCH_LANES`] for the per-algorithm rationale).
const SHA256_LANES: usize = 2;

/// Drives `digest_batch` grouping: messages are bucketed by length
/// (iterated in ascending length order for determinism), each bucket is
/// hashed `LANES` at a time through `multi`, and the per-bucket
/// remainder goes through `scalar`. Index tracking preserves input
/// order in the output, so pairable messages are paired no matter how
/// lengths are interleaved in the batch.
fn batch_by_lanes<const LANES: usize>(
    msgs: &[&[u8]],
    multi: impl Fn(&[&[u8]; LANES]) -> [Digest; LANES],
    scalar: impl Fn(&[u8]) -> Digest,
) -> Vec<Digest> {
    let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, m) in msgs.iter().enumerate() {
        buckets.entry(m.len()).or_default().push(i);
    }
    let mut out = vec![Digest::ZERO; msgs.len()];
    for indices in buckets.values() {
        let mut groups = indices.chunks_exact(LANES);
        for group in groups.by_ref() {
            let lanes: [&[u8]; LANES] = std::array::from_fn(|l| msgs[group[l]]);
            let digests = multi(&lanes);
            for (lane, &i) in group.iter().enumerate() {
                out[i] = digests[lane];
            }
        }
        for &i in groups.remainder() {
            out[i] = scalar(msgs[i]);
        }
    }
    out
}

/// MD5-based [`ChunkHasher`] (the paper's primary hash unit).
///
/// # Examples
///
/// ```
/// use miv_hash::{ChunkHasher, Md5Hasher};
///
/// let h = Md5Hasher;
/// assert_eq!(h.digest(b"abc").to_hex(), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Md5Hasher;

impl ChunkHasher for Md5Hasher {
    fn digest(&self, data: &[u8]) -> Digest {
        md5(data)
    }

    fn digest_batch(&self, msgs: &[&[u8]]) -> Vec<Digest> {
        batch_by_lanes::<BATCH_LANES>(msgs, md5_multi, md5)
    }

    fn batch_lanes(&self) -> usize {
        BATCH_LANES
    }

    fn name(&self) -> &'static str {
        "md5"
    }
}

/// SHA-1-based [`ChunkHasher`], truncated to 128 bits.
///
/// The paper considers SHA-1 as the alternative hash unit; the tree stores
/// 128-bit values, so the 160-bit output is truncated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sha1Hasher;

impl ChunkHasher for Sha1Hasher {
    fn digest(&self, data: &[u8]) -> Digest {
        truncate(sha1(data))
    }

    fn digest_batch(&self, msgs: &[&[u8]]) -> Vec<Digest> {
        batch_by_lanes::<BATCH_LANES>(
            msgs,
            |group| {
                let full = sha1_multi(group);
                std::array::from_fn(|l| truncate(full[l]))
            },
            |m| truncate(sha1(m)),
        )
    }

    fn batch_lanes(&self) -> usize {
        BATCH_LANES
    }

    fn name(&self) -> &'static str {
        "sha1-128"
    }
}

/// SHA-256-based [`ChunkHasher`], truncated to 128 bits.
///
/// The modern default hash in contemporary integrity systems; like
/// SHA-1 the 256-bit output is truncated to the tree's 128-bit slots
/// (Table 1 fixes the stored hash length).
///
/// # Examples
///
/// ```
/// use miv_hash::{ChunkHasher, Sha256Hasher};
///
/// let h = Sha256Hasher;
/// assert_eq!(h.digest(b"abc").to_hex(), "ba7816bf8f01cfea414140de5dae2223");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sha256Hasher;

impl ChunkHasher for Sha256Hasher {
    fn digest(&self, data: &[u8]) -> Digest {
        truncate(sha256(data))
    }

    fn digest_batch(&self, msgs: &[&[u8]]) -> Vec<Digest> {
        batch_by_lanes::<SHA256_LANES>(
            msgs,
            |group| {
                let full = sha256_multi(group);
                std::array::from_fn(|l| truncate(full[l]))
            },
            |m| truncate(sha256(m)),
        )
    }

    fn batch_lanes(&self) -> usize {
        SHA256_LANES
    }

    fn name(&self) -> &'static str {
        "sha256-128"
    }
}

/// Truncates a wider digest (SHA-1's 160 bits, SHA-256's 256) to the
/// tree's 128-bit width.
fn truncate<const N: usize>(full: [u8; N]) -> Digest {
    let mut out = [0u8; DIGEST_BYTES];
    out.copy_from_slice(&full[..DIGEST_BYTES]);
    Digest(out)
}

/// A selectable hash-unit algorithm: the value behind every `--hash`
/// CLI flag (campaigns, serving, the store bench) and the figures
/// hash-unit sweep.
///
/// # Examples
///
/// ```
/// use miv_hash::HashAlgo;
///
/// let algo = HashAlgo::parse("sha256").unwrap();
/// assert_eq!(algo.hasher().name(), "sha256-128");
/// ```
// miv-analyze: exhaustive
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum HashAlgo {
    /// MD5 — the paper's primary hash unit and the simulator default.
    #[default]
    Md5,
    /// SHA-1, truncated to 128 bits (the paper's alternative unit).
    Sha1,
    /// SHA-256, truncated to 128 bits (the modern default).
    Sha256,
}

impl HashAlgo {
    /// Every algorithm, in sweep order.
    pub const ALL: [HashAlgo; 3] = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Sha256];

    /// Parses a `--hash` flag value (`md5`, `sha1`, `sha256`).
    pub fn parse(s: &str) -> Option<HashAlgo> {
        match s {
            "md5" => Some(HashAlgo::Md5),
            "sha1" => Some(HashAlgo::Sha1),
            "sha256" => Some(HashAlgo::Sha256),
            _ => None,
        }
    }

    /// The flag spelling accepted by [`parse`](Self::parse), also used
    /// as the report label.
    pub fn label(self) -> &'static str {
        match self {
            HashAlgo::Md5 => "md5",
            HashAlgo::Sha1 => "sha1",
            HashAlgo::Sha256 => "sha256",
        }
    }

    /// Constructs the algorithm's [`ChunkHasher`].
    pub fn hasher(self) -> Box<dyn ChunkHasher + Send + Sync> {
        match self {
            HashAlgo::Md5 => Box::new(Md5Hasher),
            HashAlgo::Sha1 => Box::new(Sha1Hasher),
            HashAlgo::Sha256 => Box::new(Sha256Hasher),
        }
    }

    /// Modeled hash-unit throughput for the timing-side sweeps, in
    /// GB/s, following the paper's §6.2 relative costs: SHA-1 runs at
    /// roughly half MD5's rate and SHA-256 at roughly half SHA-1's (64
    /// heavier rounds over the same 512-bit block).
    pub fn modeled_throughput_gbps(self) -> f64 {
        match self {
            HashAlgo::Md5 => 3.2,
            HashAlgo::Sha1 => 1.6,
            HashAlgo::Sha256 => 0.8,
        }
    }
}

impl fmt::Display for HashAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let d = Digest::from_bytes([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        assert_eq!(Digest::from_hex(&d.to_hex()), Ok(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("").is_err());
        assert!(Digest::from_hex("00112233445566778899aabbccddeef").is_err()); // 31 chars
        assert!(Digest::from_hex("zz112233445566778899aabbccddeeff").is_err());
        // Error type is displayable and implements Error.
        let err = Digest::from_hex("xyz").unwrap_err();
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn xor_identity_and_involution() {
        let a = Digest::from_bytes([0x5au8; 16]);
        let b = Digest::from_bytes([0xa5u8; 16]);
        assert_eq!(a ^ Digest::ZERO, a);
        assert_eq!((a ^ b) ^ b, a);
        let mut c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
    }

    #[test]
    fn sha1_hasher_truncates() {
        let h = Sha1Hasher;
        let d = h.digest(b"abc");
        assert_eq!(d.to_hex(), "a9993e364706816aba3e25717850c26c");
    }

    #[test]
    fn sha256_hasher_truncates() {
        let h = Sha256Hasher;
        let d = h.digest(b"abc");
        assert_eq!(d.to_hex(), "ba7816bf8f01cfea414140de5dae2223");
    }

    #[test]
    fn hashers_differ() {
        assert_ne!(Md5Hasher.digest(b"x"), Sha1Hasher.digest(b"x"));
        assert_ne!(Sha1Hasher.digest(b"x"), Sha256Hasher.digest(b"x"));
        assert_ne!(Md5Hasher.digest(b"x"), Sha256Hasher.digest(b"x"));
        assert_eq!(Md5Hasher.name(), "md5");
        assert_eq!(Sha1Hasher.name(), "sha1-128");
        assert_eq!(Sha256Hasher.name(), "sha256-128");
    }

    #[test]
    fn digest_batch_matches_serial_for_all_hashers() {
        let msgs: Vec<Vec<u8>> = (0..9usize)
            .map(|i| (0..(i * 31 % 130)).map(|b| (b as u8) ^ (i as u8)).collect())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();
        for hasher in [&Md5Hasher as &dyn ChunkHasher, &Sha1Hasher, &Sha256Hasher] {
            let batch = hasher.digest_batch(&refs);
            assert_eq!(batch.len(), refs.len());
            for (i, m) in refs.iter().enumerate() {
                assert_eq!(batch[i], hasher.digest(m), "{} msg {i}", hasher.name());
            }
        }
    }

    /// Regression: the pre-bucketing `batch_by_lanes` only paired
    /// *adjacent* equal-length messages, so in an interleaved batch
    /// like `[16B, 8B, 16B, 16B]` the leading 16-byte message dropped
    /// to the scalar path despite two pairable partners further on.
    /// Length bucketing must both keep digests equal to the serial path
    /// and preserve input order in the output.
    #[test]
    fn digest_batch_pairs_nonadjacent_equal_lengths() {
        let msgs: [&[u8]; 4] = [&[0xaa; 16], &[0xbb; 8], &[0xcc; 16], &[0xdd; 16]];
        for hasher in [&Md5Hasher as &dyn ChunkHasher, &Sha1Hasher, &Sha256Hasher] {
            let batch = hasher.digest_batch(&msgs);
            for (i, m) in msgs.iter().enumerate() {
                assert_eq!(batch[i], hasher.digest(m), "{} msg {i}", hasher.name());
            }
        }
        // Same-length messages with distinct contents must not be
        // permuted by the bucketing.
        let distinct: [&[u8]; 3] = [b"aaaa", b"bbbb", b"cccc"];
        let batch = Md5Hasher.digest_batch(&distinct);
        assert_eq!(batch[0], Md5Hasher.digest(b"aaaa"));
        assert_eq!(batch[1], Md5Hasher.digest(b"bbbb"));
        assert_eq!(batch[2], Md5Hasher.digest(b"cccc"));
    }

    #[test]
    fn batch_lanes_are_per_algorithm() {
        assert_eq!(Md5Hasher.batch_lanes(), BATCH_LANES);
        assert_eq!(Sha1Hasher.batch_lanes(), BATCH_LANES);
        assert!(Sha256Hasher.batch_lanes() >= 1);
        #[derive(Debug)]
        struct SerialOnly;
        impl ChunkHasher for SerialOnly {
            fn digest(&self, data: &[u8]) -> Digest {
                md5(data)
            }
            fn name(&self) -> &'static str {
                "serial"
            }
        }
        assert_eq!(SerialOnly.batch_lanes(), 1);
    }

    #[test]
    fn hash_algo_parses_and_builds_hashers() {
        assert_eq!(HashAlgo::parse("md5"), Some(HashAlgo::Md5));
        assert_eq!(HashAlgo::parse("sha1"), Some(HashAlgo::Sha1));
        assert_eq!(HashAlgo::parse("sha256"), Some(HashAlgo::Sha256));
        assert_eq!(HashAlgo::parse("sha-256"), None);
        for algo in HashAlgo::ALL {
            assert_eq!(HashAlgo::parse(algo.label()), Some(algo));
            assert_eq!(format!("{algo}"), algo.label());
            let hasher = algo.hasher();
            assert_eq!(hasher.digest(b"x"), hasher.digest(b"x"));
            assert!(algo.modeled_throughput_gbps() > 0.0);
        }
        assert_eq!(HashAlgo::default(), HashAlgo::Md5);
        assert_eq!(HashAlgo::Sha256.hasher().name(), "sha256-128");
    }

    #[test]
    fn digest_batch_equal_length_groups_use_lanes() {
        // 4 + 4 + 1 equal-length messages: two full lane groups plus a
        // scalar straggler, all matching the serial result.
        let msgs: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 96]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();
        let batch = Md5Hasher.digest_batch(&refs);
        for (i, m) in refs.iter().enumerate() {
            assert_eq!(batch[i], Md5Hasher.digest(m));
        }
        assert!(Md5Hasher.digest_batch(&[]).is_empty());
    }

    #[test]
    fn digest_debug_is_nonempty() {
        let s = format!("{:?}", Digest::ZERO);
        assert!(s.contains("Digest("));
        assert_eq!(format!("{}", Digest::ZERO), "0".repeat(32));
    }
}
