//! Cryptographic primitives and hash-unit timing models for memory
//! integrity verification.
//!
//! This crate provides everything the HPCA'03 hash-tree schemes need from
//! the "crypto substrate":
//!
//! * [`md5`] — the MD5 message digest (RFC 1321), the hash the paper's
//!   hardware unit implements; one-shot digests compress full blocks
//!   straight from the input, and [`md5::md5_multi`] interleaves up to
//!   [`BATCH_LANES`] independent messages per pass for ILP.
//! * [`sha1`] — SHA-1 (RFC 3174), the paper's alternative hash, with the
//!   same one-shot and multi-lane ([`sha1::sha1_multi`]) paths.
//! * [`sha256`] — SHA-256 (FIPS 180-4), the modern default hash, again
//!   with one-shot and multi-lane ([`sha256::sha256_multi`]) paths;
//!   [`HashAlgo`] selects between the three units at the CLI.
//! * [`xtea`] — the XTEA block cipher, used to build a 128-bit
//!   pseudo-random permutation for the incremental MAC.
//! * [`aes`] — AES-128 (FIPS-197), the standards-grade alternative
//!   permutation (see [`prp`]).
//! * [`xormac`] — the incremental XOR-MAC of Bellare, Guérin and Rogaway
//!   with the paper's one-bit timestamps (§5.4), supporting O(1)
//!   single-block updates.
//! * [`engine`] — parameters of the pipelined hashing unit (160-cycle
//!   latency, configurable throughput; Table 1). The schedulable
//!   cycle-level resource lives in `miv-core::hash_unit`.
//! * [`digest`] — the 128-bit [`Digest`] value and the
//!   [`ChunkHasher`] trait that the integrity-tree
//!   core is generic over.
//!
//! # Security
//!
//! MD5 and SHA-1 are implemented because the paper evaluates them; both
//! are **cryptographically broken** for collision resistance today. This
//! crate is a research artifact for architecture simulation — do not use
//! it to protect real data.
//!
//! # Examples
//!
//! ```
//! use miv_hash::md5::md5;
//!
//! let d = md5(b"abc");
//! assert_eq!(d.to_hex(), "900150983cd24fb0d6963f7d28e17f72");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod digest;
pub mod engine;
pub mod md5;
pub mod narrow;
pub mod prp;
pub mod sha1;
pub mod sha256;
pub mod xormac;
pub mod xtea;

pub use digest::{ChunkHasher, Digest, HashAlgo, Md5Hasher, Sha1Hasher, Sha256Hasher, BATCH_LANES};
pub use engine::{HashEngineConfig, Throughput};
pub use xormac::XorMac;
