//! The XTEA block cipher and a 128-bit Feistel PRP built from it.
//!
//! The incremental XOR-MAC (§5.4) needs an invertible keyed permutation
//! `E_k` over the 128-bit digest space. The paper does not pin down a
//! cipher; we build one from **XTEA** (Needham & Wheeler, 1997), a tiny
//! 64-bit-block cipher with a 128-bit key, lifted to a 128-bit block via a
//! four-round Luby–Rackoff (balanced Feistel) construction. Four Feistel
//! rounds over a PRF yield a strong pseudo-random permutation, which is all
//! the MAC algebra requires.
//!
//! # Examples
//!
//! ```
//! use miv_hash::xtea::{Prp128, Xtea};
//!
//! let prp = Prp128::new([7u8; 16]);
//! let pt = [0x42u8; 16];
//! let ct = prp.encrypt(pt);
//! assert_ne!(ct, pt);
//! assert_eq!(prp.decrypt(ct), pt);
//! ```

/// Number of XTEA Feistel cycles (64 rounds).
const XTEA_ROUNDS: u32 = 32;
/// The XTEA key-schedule constant (derived from the golden ratio).
const DELTA: u32 = 0x9e3779b9;

/// The XTEA block cipher: 64-bit block, 128-bit key, 64 rounds.
///
/// # Examples
///
/// ```
/// use miv_hash::xtea::Xtea;
///
/// let key = [0u8; 16];
/// let cipher = Xtea::new(key);
/// let ct = cipher.encrypt_block([0x0123_4567, 0x89ab_cdef]);
/// assert_eq!(cipher.decrypt_block(ct), [0x0123_4567, 0x89ab_cdef]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xtea {
    key: [u32; 4],
}

impl Xtea {
    /// Creates a cipher from a 128-bit key (big-endian word order).
    pub fn new(key: [u8; 16]) -> Self {
        let mut k = [0u32; 4];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Xtea { key: k }
    }

    /// Encrypts one 64-bit block given as two 32-bit words `[v0, v1]`.
    pub fn encrypt_block(&self, block: [u32; 2]) -> [u32; 2] {
        let [mut v0, mut v1] = block;
        let mut sum = 0u32;
        for _ in 0..XTEA_ROUNDS {
            v0 = v0.wrapping_add(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.key[(sum & 3) as usize])),
            );
            sum = sum.wrapping_add(DELTA);
            v1 = v1.wrapping_add(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.key[((sum >> 11) & 3) as usize])),
            );
        }
        [v0, v1]
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt_block(&self, block: [u32; 2]) -> [u32; 2] {
        let [mut v0, mut v1] = block;
        let mut sum = DELTA.wrapping_mul(XTEA_ROUNDS);
        for _ in 0..XTEA_ROUNDS {
            v1 = v1.wrapping_sub(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.key[((sum >> 11) & 3) as usize])),
            );
            sum = sum.wrapping_sub(DELTA);
            v0 = v0.wrapping_sub(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.key[(sum & 3) as usize])),
            );
        }
        [v0, v1]
    }
}

/// A 128-bit pseudo-random permutation: four-round balanced Feistel over
/// XTEA-keyed round functions.
///
/// Each round applies `R_i(x) = XTEA_{k_i}(x_hi) ⊕ XTEA_{k_i}(x_lo ⊕ i)` as
/// a 64-bit PRF to one half and XORs it into the other, with independent
/// per-round keys derived from the master key.
///
/// # Examples
///
/// ```
/// use miv_hash::xtea::Prp128;
///
/// let prp = Prp128::new(*b"0123456789abcdef");
/// let x = [9u8; 16];
/// assert_eq!(prp.decrypt(prp.encrypt(x)), x);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prp128 {
    rounds: [Xtea; 4],
}

impl Prp128 {
    /// Derives the four round ciphers from a 128-bit master key.
    pub fn new(key: [u8; 16]) -> Self {
        // Round keys: master key with a per-round tweak mixed into every
        // byte, then one self-encryption pass to decorrelate.
        let make = |round: u8| {
            let mut k = key;
            for (i, byte) in k.iter_mut().enumerate() {
                *byte = byte
                    .wrapping_add(round.wrapping_mul(0x9d))
                    .rotate_left((i % 8) as u32)
                    ^ round;
            }
            Xtea::new(k)
        };
        Prp128 {
            rounds: [make(1), make(2), make(3), make(4)],
        }
    }

    /// Encrypts a 128-bit value.
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let (mut left, mut right) = split(block);
        for (i, cipher) in self.rounds.iter().enumerate() {
            let f = round_prf(cipher, right, i as u32);
            let new_right = [left[0] ^ f[0], left[1] ^ f[1]];
            left = right;
            right = new_right;
        }
        join(left, right)
    }

    /// Decrypts a 128-bit value.
    pub fn decrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let (mut left, mut right) = split(block);
        for (i, cipher) in self.rounds.iter().enumerate().rev() {
            let f = round_prf(cipher, left, i as u32);
            let new_left = [right[0] ^ f[0], right[1] ^ f[1]];
            right = left;
            left = new_left;
        }
        join(left, right)
    }
}

/// The 64-bit PRF used inside each Feistel round.
fn round_prf(cipher: &Xtea, half: [u32; 2], round: u32) -> [u32; 2] {
    cipher.encrypt_block([half[0] ^ round, half[1] ^ round.rotate_left(16)])
}

fn split(block: [u8; 16]) -> ([u32; 2], [u32; 2]) {
    let w = |i: usize| u32::from_be_bytes([block[i], block[i + 1], block[i + 2], block[i + 3]]);
    ([w(0), w(4)], [w(8), w(12)])
}

fn join(left: [u32; 2], right: [u32; 2]) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&left[0].to_be_bytes());
    out[4..8].copy_from_slice(&left[1].to_be_bytes());
    out[8..12].copy_from_slice(&right[0].to_be_bytes());
    out[12..16].copy_from_slice(&right[1].to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vector for XTEA with 64 rounds (widely published).
    #[test]
    fn xtea_known_answer() {
        // Key = 000102030405060708090a0b0c0d0e0f, PT = 4142434445464748.
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let cipher = Xtea::new(key);
        let pt = [0x41424344u32, 0x45464748];
        let ct = cipher.encrypt_block(pt);
        assert_eq!(ct, [0x497df3d0, 0x72612cb5]);
        assert_eq!(cipher.decrypt_block(ct), pt);
    }

    #[test]
    fn xtea_zero_key_roundtrip() {
        let cipher = Xtea::new([0u8; 16]);
        for v in [
            [0u32, 0],
            [1, 0],
            [0, 1],
            [u32::MAX, u32::MAX],
            [0xdead, 0xbeef],
        ] {
            assert_eq!(cipher.decrypt_block(cipher.encrypt_block(v)), v);
        }
    }

    #[test]
    fn prp_roundtrip_many() {
        let prp = Prp128::new(*b"a 128-bit key!!!");
        for i in 0..256u32 {
            let mut block = [0u8; 16];
            block[0..4].copy_from_slice(&i.to_be_bytes());
            block[12..16].copy_from_slice(&(i.wrapping_mul(2654435761)).to_be_bytes());
            assert_eq!(prp.decrypt(prp.encrypt(block)), block);
        }
    }

    #[test]
    fn prp_is_key_dependent() {
        let a = Prp128::new([1u8; 16]);
        let b = Prp128::new([2u8; 16]);
        let pt = [0x33u8; 16];
        assert_ne!(a.encrypt(pt), b.encrypt(pt));
    }

    #[test]
    fn prp_diffuses_single_bit() {
        let prp = Prp128::new([5u8; 16]);
        let base = prp.encrypt([0u8; 16]);
        let mut flipped = [0u8; 16];
        flipped[15] = 1;
        let other = prp.encrypt(flipped);
        let differing: u32 = base
            .iter()
            .zip(other.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        // Expect roughly half the 128 bits to flip; demand at least a quarter.
        assert!(differing >= 32, "only {differing} bits differ");
    }

    #[test]
    fn prp_is_a_permutation_on_a_sample() {
        // Distinct inputs must map to distinct outputs.
        let prp = Prp128::new([9u8; 16]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u16 {
            let mut block = [0u8; 16];
            block[0] = (i >> 8) as u8;
            block[1] = i as u8;
            assert!(seen.insert(prp.encrypt(block)), "collision at {i}");
        }
    }
}
