//! Parameters of the pipelined hashing unit (§6.1, Table 1).
//!
//! The paper's hardware checker contains a hash unit with:
//!
//! * **latency** of 160 cycles from the start of an operation to the
//!   digest being available, and
//! * a **throughput** limit — at 3.2 GB/s on a 1 GHz core, a new 64-byte
//!   block may enter the pipeline every 20 cycles. Figure 6 sweeps this
//!   parameter over {6.4, 3.2, 1.6, 0.8} GB/s.
//!
//! This module holds the configuration types ([`Throughput`],
//! [`HashEngineConfig`]); the schedulable cycle-level resource lives with
//! the rest of the checker hardware in `miv-core::hash_unit`.

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;

/// Width of one pipeline operation in bytes (one 512-bit hash block).
pub const PIPELINE_BLOCK_BYTES: u64 = 64;

/// Core clock frequency assumed by [`Throughput`] conversions (Table 1).
pub const CORE_CLOCK_GHZ: f64 = 1.0;

/// Hash-unit throughput, stored as the issue interval for one 64-byte
/// pipeline block.
///
/// # Examples
///
/// ```
/// use miv_hash::Throughput;
///
/// let t = Throughput::gbps(3.2);
/// assert_eq!(t.interval_for(64), 20); // one 64-B block every 20 cycles
/// assert_eq!(t.interval_for(128), 40);
/// assert!((t.as_gbps() - 3.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Throughput {
    /// Cycles between successive 64-byte pipeline issues.
    cycles_per_block: u64,
}

impl Throughput {
    /// Table 1 default: 3.2 GB/s (one 64-byte block every 20 cycles).
    pub const TABLE1: Throughput = Throughput {
        cycles_per_block: 20,
    };

    /// Creates a throughput from GB/s at the 1 GHz core clock.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive or the implied interval rounds to
    /// zero cycles.
    pub fn gbps(gbps: f64) -> Self {
        assert!(gbps > 0.0, "throughput must be positive");
        let cycles = (PIPELINE_BLOCK_BYTES as f64 / (gbps / CORE_CLOCK_GHZ)).round() as u64;
        assert!(
            cycles >= 1,
            "throughput too high to model (interval rounds to 0)"
        );
        Throughput {
            cycles_per_block: cycles,
        }
    }

    /// Creates a throughput directly from the per-64-byte issue interval.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn from_cycles_per_block(cycles: u64) -> Self {
        assert!(cycles >= 1, "interval must be at least one cycle");
        Throughput {
            cycles_per_block: cycles,
        }
    }

    /// Cycles between successive 64-byte pipeline issues.
    pub fn cycles_per_block(&self) -> u64 {
        self.cycles_per_block
    }

    /// The modelled bandwidth in GB/s.
    pub fn as_gbps(&self) -> f64 {
        PIPELINE_BLOCK_BYTES as f64 * CORE_CLOCK_GHZ / self.cycles_per_block as f64
    }

    /// Issue-slot occupancy in cycles for hashing `bytes` bytes.
    pub fn interval_for(&self, bytes: u64) -> u64 {
        let blocks = bytes.div_ceil(PIPELINE_BLOCK_BYTES).max(1);
        blocks * self.cycles_per_block
    }
}

/// Configuration for the hash unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashEngineConfig {
    /// Pipeline latency in cycles (Table 1: 160).
    pub latency: u64,
    /// Issue throughput.
    pub throughput: Throughput,
}

impl Default for HashEngineConfig {
    /// Table 1 parameters: 160-cycle latency, 3.2 GB/s.
    fn default() -> Self {
        HashEngineConfig {
            latency: 160,
            throughput: Throughput::TABLE1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_throughput_is_20_cycles() {
        assert_eq!(Throughput::TABLE1.interval_for(64), 20);
        assert!((Throughput::TABLE1.as_gbps() - 3.2).abs() < 1e-9);
        assert_eq!(Throughput::TABLE1.cycles_per_block(), 20);
    }

    #[test]
    fn figure6_sweep_points() {
        assert_eq!(Throughput::gbps(6.4).interval_for(64), 10);
        assert_eq!(Throughput::gbps(3.2).interval_for(64), 20);
        assert_eq!(Throughput::gbps(1.6).interval_for(64), 40);
        assert_eq!(Throughput::gbps(0.8).interval_for(64), 80);
    }

    #[test]
    fn from_cycles_roundtrip() {
        let t = Throughput::from_cycles_per_block(40);
        assert!((t.as_gbps() - 1.6).abs() < 1e-9);
        assert_eq!(t.interval_for(1), 40);
        assert_eq!(t.interval_for(65), 80);
    }

    #[test]
    fn default_config_is_table1() {
        let cfg = HashEngineConfig::default();
        assert_eq!(cfg.latency, 160);
        assert_eq!(cfg.throughput, Throughput::TABLE1);
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn zero_throughput_rejected() {
        let _ = Throughput::gbps(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_interval_rejected() {
        let _ = Throughput::from_cycles_per_block(0);
    }
}
