//! Telemetry plumbing for full-system runs: a bundled metrics
//! [`Registry`] + bounded [`EventTrace`], interval [`Sample`]s taken
//! during [`System::run_sampled`](crate::System::run_sampled), and the
//! `miv-metrics-v1` JSON document written by `--metrics-out`.

use miv_obs::{EventTrace, EventTraceSnapshot, JsonValue, MetricsSnapshot, Registry};

use crate::system::RunResult;

/// Default event-ring capacity: enough for the tail of a long run
/// without unbounded memory.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// A metrics registry and event ring that travel together through a
/// simulated machine. Clones share the same underlying stores, so the
/// harness can keep one handle while the hierarchy records into another.
///
/// # Examples
///
/// ```
/// use miv_core::Scheme;
/// use miv_sim::{System, SystemConfig, Telemetry};
/// use miv_trace::Benchmark;
///
/// let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
/// cfg.checker.protected_bytes = 128 << 20;
/// let mut sys = System::for_benchmark(cfg, Benchmark::Gzip, 1);
/// let telemetry = Telemetry::new();
/// sys.attach_telemetry(&telemetry);
/// let (result, samples) = sys.run_sampled(2_000, 20_000, 5_000);
/// assert!(samples.len() >= 2);
/// let doc = telemetry.metrics_document(&result, &samples);
/// assert_eq!(doc.get("schema").unwrap().as_str(), Some("miv-metrics-v1"));
/// ```
#[derive(Debug, Clone)]
pub struct Telemetry {
    registry: Registry,
    events: EventTrace,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh registry and an event ring of [`DEFAULT_EVENT_CAPACITY`].
    pub fn new() -> Self {
        Telemetry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A fresh registry and an event ring holding `capacity` events
    /// (oldest dropped first once full).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Telemetry {
            registry: Registry::new(),
            events: EventTrace::bounded(capacity),
        }
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared event ring.
    pub fn events(&self) -> &EventTrace {
        &self.events
    }

    /// Renders the buffered events as JSONL (one object per line), the
    /// format `--trace-events` writes.
    pub fn events_jsonl(&self) -> String {
        self.events.to_jsonl()
    }

    /// Copies out the registry and event ring as plain owned data that
    /// can cross a thread boundary (the live handles are `Rc`-shared
    /// and cannot).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            metrics: self.registry.snapshot(),
            events: self.events.snapshot(),
        }
    }

    /// Folds another recorder's snapshot into this one: counters sum,
    /// gauges are latest-wins, histograms merge bucket-wise, and the
    /// event ring appends the snapshot's events (evicting its own oldest
    /// once full).
    ///
    /// This is how parallel sweeps aggregate: workers record into
    /// per-run `Telemetry` values and the [`SweepRunner`](crate::sweep)
    /// absorbs the returned snapshots in request order, which makes the
    /// merged document identical at any worker count.
    pub fn absorb(&self, snap: &TelemetrySnapshot) {
        self.registry.absorb(&snap.metrics);
        self.events.absorb(&snap.events);
    }

    /// Builds the `miv-metrics-v1` summary document:
    ///
    /// ```json
    /// {
    ///   "schema": "miv-metrics-v1",
    ///   "run": { "scheme": "...", "ipc": ..., ... },
    ///   "l2": { "data": {"accesses", "hits", "hit_rate"}, "hash": {...} },
    ///   "counters": { "name": value, ... },
    ///   "gauges": { "name": value, ... },
    ///   "histograms": { "name": {"count", "sum", "min", "max", "mean",
    ///                            "p50", "p90", "p99", "buckets"}, ... },
    ///   "events": { "recorded", "dropped", "capacity" },
    ///   "samples": [ {"instructions", "cycles", "ipc",
    ///                 "l2_data_hit_rate", "l2_hash_hit_rate",
    ///                 "bus_utilization"}, ... ]
    /// }
    /// ```
    pub fn metrics_document(&self, run: &RunResult, samples: &[Sample]) -> JsonValue {
        self.document(Some(run), samples)
    }

    /// The same document with `"run": null` and no samples — used when
    /// one registry aggregates many runs (the `figures` sweeps).
    pub fn aggregate_document(&self) -> JsonValue {
        self.document(None, &[])
    }

    fn document(&self, run: Option<&RunResult>, samples: &[Sample]) -> JsonValue {
        let snap = self.registry.snapshot();
        let mut doc = JsonValue::obj();
        doc.push("schema", "miv-metrics-v1");
        doc.push("run", run.map_or(JsonValue::Null, RunResult::to_json));
        doc.push("l2", l2_summary(&snap));
        let metrics = snap.to_json();
        for section in ["counters", "gauges", "histograms"] {
            doc.push(
                section,
                metrics.get(section).cloned().unwrap_or_else(JsonValue::obj),
            );
        }
        let mut events = JsonValue::obj();
        events.push("recorded", self.events.recorded());
        events.push("dropped", self.events.dropped());
        events.push("capacity", self.events.capacity());
        doc.push("events", events);
        doc.push(
            "samples",
            samples.iter().map(Sample::to_json).collect::<Vec<_>>(),
        );
        doc
    }
}

/// An owned, `Send` copy of a [`Telemetry`]'s state: the metrics
/// snapshot plus the event-ring contents. Produced by
/// [`Telemetry::snapshot`] in a worker thread, consumed by
/// [`Telemetry::absorb`] on the aggregating side.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counters, gauges and histogram snapshots.
    pub metrics: MetricsSnapshot,
    /// Buffered events plus recorded/dropped totals.
    pub events: EventTraceSnapshot,
}

/// Derives per-line-kind L2 hit rates from the registry's `l2.*`
/// counters (all zero when no observer was attached).
fn l2_summary(snap: &miv_obs::MetricsSnapshot) -> JsonValue {
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let mut l2 = JsonValue::obj();
    for kind in ["data", "hash"] {
        let hits =
            counter(&format!("l2.{kind}.read_hits")) + counter(&format!("l2.{kind}.write_hits"));
        let misses = counter(&format!("l2.{kind}.read_misses"))
            + counter(&format!("l2.{kind}.write_misses"));
        let accesses = hits + misses;
        let mut o = JsonValue::obj();
        o.push("accesses", accesses);
        o.push("hits", hits);
        o.push("misses", misses);
        o.push(
            "hit_rate",
            if accesses == 0 {
                1.0
            } else {
                hits as f64 / accesses as f64
            },
        );
        o.push("evictions", counter(&format!("l2.{kind}.evictions")));
        l2.push(kind, o);
    }
    l2
}

/// One interval sample of the time series collected by
/// [`System::run_sampled`](crate::System::run_sampled). Rates are over
/// the interval ending at this sample, not cumulative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cumulative instructions committed in the measurement window at
    /// the end of this interval.
    pub instructions: u64,
    /// Cumulative cycles elapsed in the measurement window.
    pub cycles: u64,
    /// Instructions per cycle over this interval.
    pub ipc: f64,
    /// L2 hit rate for program data over this interval (1.0 when the
    /// interval had no L2 data accesses).
    pub l2_data_hit_rate: f64,
    /// L2 hit rate for hash lines over this interval (1.0 when the
    /// interval had no hash accesses — e.g. the base scheme).
    pub l2_hash_hit_rate: f64,
    /// Fraction of the interval's cycles the memory bus spent busy.
    pub bus_utilization: f64,
}

impl Sample {
    /// One JSON object per sample, in `samples` order.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::obj();
        o.push("instructions", self.instructions);
        o.push("cycles", self.cycles);
        o.push("ipc", self.ipc);
        o.push("l2_data_hit_rate", self.l2_data_hit_rate);
        o.push("l2_hash_hit_rate", self.l2_hash_hit_rate);
        o.push("bus_utilization", self.bus_utilization);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_has_schema_and_sections() {
        let t = Telemetry::with_event_capacity(4);
        let run = RunResult {
            scheme: "base".into(),
            benchmark: "none".into(),
            instructions: 0,
            cycles: 0,
            ipc: 0.0,
            l2_data_miss_rate: 0.0,
            l2_data_misses: 0,
            hash_hit_rate: 1.0,
            extra_loads_per_miss: 0.0,
            bus_bytes: 0,
            hash_bytes: 0,
            bandwidth_gbps: 0.0,
            l2_hash_occupancy: 0.0,
            read_buffer_wait: 0,
        };
        let doc = t.metrics_document(&run, &[]);
        let text = doc.render_pretty();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("miv-metrics-v1"));
        for section in [
            "run",
            "l2",
            "counters",
            "gauges",
            "histograms",
            "events",
            "samples",
        ] {
            assert!(back.get(section).is_some(), "missing {section}");
        }
        assert_eq!(
            back.get("events")
                .unwrap()
                .get("capacity")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        // With no observer attached the derived hit rates default to 1.
        let data = back.get("l2").unwrap().get("data").unwrap();
        assert_eq!(data.get("accesses").unwrap().as_u64(), Some(0));
        assert_eq!(data.get("hit_rate").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn sample_json_fields() {
        let s = Sample {
            instructions: 1000,
            cycles: 2000,
            ipc: 0.5,
            l2_data_hit_rate: 0.9,
            l2_hash_hit_rate: 1.0,
            bus_utilization: 0.25,
        };
        let j = s.to_json();
        assert_eq!(j.get("instructions").unwrap().as_u64(), Some(1000));
        assert_eq!(j.get("ipc").unwrap().as_f64(), Some(0.5));
        assert_eq!(j.get("bus_utilization").unwrap().as_f64(), Some(0.25));
    }
}
