//! Parallel sweep engine: run many independent simulations across
//! worker threads and get results back in request order.
//!
//! The paper's evaluation is a grid of independent runs — schemes ×
//! benchmarks × parameter points — and every run is deterministic given
//! its [`RunRequest`] (the trace generator is seeded, the machine is
//! cycle-accurate). That makes the sweep embarrassingly parallel: a
//! [`SweepRunner`] spawns `jobs` scoped workers that pull requests off a
//! shared atomic index, execute them on private machines, and post the
//! [`RunOutcome`]s back into per-request slots. Because outcomes are
//! keyed by request index, the returned vector is identical at any
//! thread count, so everything downstream (tables, claims, JSON export)
//! is byte-for-byte reproducible whether you run with `--jobs 1` or
//! `--jobs 32`.
//!
//! Telemetry crosses the thread boundary as data, not as handles:
//! `miv-obs` recorders are deliberately `Rc`-cheap and not `Send`, so
//! each run records into a private [`Telemetry`] and the worker returns
//! its [`TelemetrySnapshot`] (plain owned maps and vectors) inside the
//! outcome. The caller aggregates by [`Telemetry::absorb`]ing the
//! snapshots in request order — counters sum, histograms merge, the
//! event ring keeps the tail — which reproduces exactly the document a
//! sequential sweep sharing one recorder would have written.
//!
//! # Examples
//!
//! ```
//! use miv_core::Scheme;
//! use miv_sim::{RunRequest, SweepRunner, SystemConfig};
//! use miv_trace::Benchmark;
//!
//! let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
//! cfg.checker.protected_bytes = 128 << 20;
//! let requests: Vec<RunRequest> = [Benchmark::Gzip, Benchmark::Mcf]
//!     .into_iter()
//!     .map(|bench| RunRequest::new(cfg, bench, 2_000, 10_000, 42))
//!     .collect();
//! let outcomes = SweepRunner::new(2).run(&requests);
//! assert_eq!(outcomes.len(), 2);
//! assert_eq!(outcomes[0].result.benchmark, "gzip"); // request order
//! assert!(outcomes[1].result.ipc > 0.0);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use miv_trace::{Benchmark, Profile};

use crate::config::SystemConfig;
use crate::system::{RunResult, System};
use crate::telemetry::{Sample, Telemetry, TelemetrySnapshot};

/// What a [`RunRequest`] simulates: a named paper benchmark or a custom
/// synthetic profile. Plain data, so requests can cross thread
/// boundaries freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// One of the paper's SPEC-calibrated benchmarks.
    Benchmark(Benchmark),
    /// A custom synthetic profile (e.g. from `--custom`).
    Profile(Profile),
}

impl Workload {
    /// The underlying trace profile.
    pub fn profile(&self) -> Profile {
        match self {
            Workload::Benchmark(b) => b.profile(),
            Workload::Profile(p) => *p,
        }
    }

    /// The workload's display name.
    pub fn name(&self) -> &'static str {
        self.profile().name
    }
}

impl From<Benchmark> for Workload {
    fn from(b: Benchmark) -> Self {
        Workload::Benchmark(b)
    }
}

impl From<Profile> for Workload {
    fn from(p: Profile) -> Self {
        Workload::Profile(p)
    }
}

/// One simulation job: everything needed to build a machine, run it and
/// measure it. Requests are plain data (`Send`), independent of each
/// other, and fully determine their [`RunOutcome`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRequest {
    /// The machine to build.
    pub config: SystemConfig,
    /// The workload to run on it.
    pub workload: Workload,
    /// Warm-up instructions (statistics discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Trace seed.
    pub seed: u64,
    /// Instructions per time-series sample; `0` takes a single sample
    /// covering the whole measurement window.
    pub sample_interval: u64,
}

impl RunRequest {
    /// A request with a whole-window single sample.
    pub fn new(
        config: SystemConfig,
        workload: impl Into<Workload>,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Self {
        RunRequest {
            config,
            workload: workload.into(),
            warmup,
            measure,
            seed,
            sample_interval: 0,
        }
    }

    /// Overrides the time-series sampling interval.
    pub fn with_sample_interval(mut self, interval: u64) -> Self {
        self.sample_interval = interval;
        self
    }
}

/// The measured results of one [`RunRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Run totals (IPC, miss rates, bus traffic, …).
    pub result: RunResult,
    /// Per-interval time series (one entry when `sample_interval` is 0).
    pub samples: Vec<Sample>,
    /// The run's private telemetry recording, when the runner captures
    /// telemetry; absorb these in request order via
    /// [`Telemetry::absorb`] to aggregate a sweep.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// Executes batches of [`RunRequest`]s across worker threads.
///
/// Workers are spawned per [`run`](Self::run) call inside
/// [`std::thread::scope`] and pull requests off a shared atomic index —
/// no channels, no work stealing, no idle workers while requests
/// remain. Outcomes land in per-request slots, so the returned vector
/// is in request order and independent of scheduling.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
    event_capacity: Option<usize>,
}

impl SweepRunner {
    /// A runner with `jobs` worker threads; `0` means one per available
    /// core ([`available_jobs`](Self::available_jobs)).
    pub fn new(jobs: usize) -> Self {
        SweepRunner {
            jobs: if jobs == 0 {
                Self::available_jobs()
            } else {
                jobs
            },
            event_capacity: None,
        }
    }

    /// The default worker count: the machine's available parallelism.
    pub fn available_jobs() -> usize {
        std::thread::available_parallelism().map_or(1, usize::from)
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Captures per-run telemetry: each run records into a private
    /// [`Telemetry`] with an event ring of `event_capacity`, and its
    /// snapshot is returned in the outcome. Off by default — attaching
    /// recorders costs a few percent of simulation time.
    pub fn capture_telemetry(mut self, event_capacity: usize) -> Self {
        self.event_capacity = Some(event_capacity);
        self
    }

    /// Executes one request on the calling thread.
    fn execute(&self, request: &RunRequest) -> RunOutcome {
        let telemetry = self.event_capacity.map(Telemetry::with_event_capacity);
        let mut sys = System::new(request.config, request.workload.profile(), request.seed);
        if let Some(t) = &telemetry {
            sys.attach_telemetry(t);
        }
        let (result, samples) =
            sys.run_sampled(request.warmup, request.measure, request.sample_interval);
        RunOutcome {
            result,
            samples,
            telemetry: telemetry.map(|t| t.snapshot()),
        }
    }

    /// Runs every request and returns the outcomes in request order.
    ///
    /// With one worker (or zero/one requests) everything runs inline on
    /// the calling thread — the sequential path spawns nothing. A panic
    /// in any run (e.g. a working set exceeding the protected segment)
    /// propagates to the caller when the scope joins.
    pub fn run(&self, requests: &[RunRequest]) -> Vec<RunOutcome> {
        self.run_tasks(requests, |r| self.execute(r))
    }

    /// The generic engine behind [`run`](Self::run): executes `exec`
    /// over every task on this runner's worker pool and returns the
    /// results in task order.
    ///
    /// Tasks must be independent (workers pull them off a shared atomic
    /// index in unspecified order) and `exec` must be a pure function of
    /// its task for the task-order result to be scheduling-independent.
    /// Other crates' grids — e.g. the adversary campaign's scheme ×
    /// attack cells — fan out through this without reimplementing the
    /// pool.
    pub fn run_tasks<T, R, F>(&self, tasks: &[T], exec: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(tasks.len());
        if workers <= 1 {
            return tasks.iter().map(exec).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else {
                        break;
                    };
                    let result = exec(task);
                    *slots[i].lock().expect("slot lock") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every task executed")
            })
            .collect()
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_core::timing::Scheme;

    fn requests() -> Vec<RunRequest> {
        let mut reqs = Vec::new();
        for scheme in [Scheme::Base, Scheme::CHash, Scheme::Naive] {
            for bench in [Benchmark::Gzip, Benchmark::Swim] {
                let mut cfg = SystemConfig::hpca03(scheme, 256 << 10, 64);
                cfg.checker.protected_bytes = 128 << 20;
                reqs.push(RunRequest::new(cfg, bench, 2_000, 10_000, 7));
            }
        }
        reqs
    }

    #[test]
    fn requests_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<RunRequest>();
        assert_send::<RunOutcome>();
        assert_send::<TelemetrySnapshot>();
    }

    #[test]
    fn parallel_outcomes_match_sequential_in_request_order() {
        let reqs = requests();
        let seq = SweepRunner::new(1).run(&reqs);
        let par = SweepRunner::new(3).run(&reqs);
        assert_eq!(seq, par);
        for (req, out) in reqs.iter().zip(&seq) {
            assert_eq!(out.result.benchmark, req.workload.name());
            assert_eq!(out.result.scheme, req.config.checker.scheme.label());
            assert_eq!(out.result.instructions, req.measure);
        }
    }

    #[test]
    fn telemetry_snapshots_absorb_deterministically() {
        let reqs = requests();
        let aggregate = |jobs: usize| {
            let telemetry = Telemetry::with_event_capacity(512);
            for outcome in SweepRunner::new(jobs).capture_telemetry(512).run(&reqs) {
                telemetry.absorb(&outcome.telemetry.expect("captured"));
            }
            telemetry.aggregate_document().render_pretty()
        };
        let doc1 = aggregate(1);
        let doc4 = aggregate(4);
        assert_eq!(doc1, doc4);
        assert!(doc1.contains("l2.data.read_misses"));
    }

    #[test]
    fn capture_is_off_by_default() {
        let reqs = &requests()[..1];
        let outcomes = SweepRunner::new(1).run(reqs);
        assert!(outcomes[0].telemetry.is_none());
    }

    #[test]
    fn jobs_resolution() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert_eq!(SweepRunner::new(5).jobs(), 5);
        assert_eq!(SweepRunner::default().jobs(), SweepRunner::available_jobs());
    }

    #[test]
    fn more_workers_than_requests_is_fine() {
        let reqs = &requests()[..2];
        let outcomes = SweepRunner::new(16).run(reqs);
        assert_eq!(outcomes.len(), 2);
    }

    #[test]
    fn run_tasks_keeps_task_order_at_any_worker_count() {
        let tasks: Vec<u64> = (0..97).collect();
        let exec = |t: &u64| t * t + 1;
        let seq = SweepRunner::new(1).run_tasks(&tasks, exec);
        for jobs in [2, 3, 8, 128] {
            assert_eq!(SweepRunner::new(jobs).run_tasks(&tasks, exec), seq);
        }
        assert_eq!(seq[10], 101);
        let empty: Vec<u64> = Vec::new();
        assert!(SweepRunner::new(4).run_tasks(&empty, exec).is_empty());
    }

    #[test]
    fn custom_profile_workload_runs() {
        let profile = Profile::cache_friendly("custom", 4 << 20);
        let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
        cfg.checker.protected_bytes = 128 << 20;
        let req = RunRequest::new(cfg, profile, 1_000, 5_000, 3);
        assert_eq!(req.workload.name(), "custom");
        let out = &SweepRunner::new(2).run(std::slice::from_ref(&req))[0];
        assert_eq!(out.result.benchmark, "custom");
        assert_eq!(out.samples.len(), 1, "interval 0 = one sample");
    }
}
