//! Calibration aid: prints per-benchmark memory-system character under
//! the baseline and chash machines, for tuning the synthetic profiles.
//!
//! ```text
//! cargo run -p miv-sim --release --bin calibrate -- [measure]
//! ```

use miv_core::timing::Scheme;
use miv_sim::{System, SystemConfig};
use miv_trace::Benchmark;

fn main() {
    let measure: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let warmup = measure / 5;
    println!(
        "{:<8} {:>5} | {:>6} {:>8} {:>6} | {:>6} {:>8} {:>6} {:>7} {:>6} | {:>6} {:>6}",
        "bench",
        "L2",
        "bIPC",
        "bMPKI",
        "bUtil",
        "cIPC",
        "cMPKI",
        "cUtil",
        "hashhit",
        "x/miss",
        "c/b",
        "n/b"
    );
    for bench in Benchmark::ALL {
        for (l2_kb, line) in [(256u64, 64u32), (1024, 64), (4096, 64)] {
            let base = System::for_benchmark(
                SystemConfig::hpca03(Scheme::Base, l2_kb << 10, line),
                bench,
                42,
            )
            .run(warmup, measure);
            let mut csys = System::for_benchmark(
                SystemConfig::hpca03(Scheme::CHash, l2_kb << 10, line),
                bench,
                42,
            );
            let chash = csys.run(warmup, measure);
            let naive = System::for_benchmark(
                SystemConfig::hpca03(Scheme::Naive, l2_kb << 10, line),
                bench,
                42,
            )
            .run(warmup, measure);
            let mpki = |r: &miv_sim::RunResult| r.l2_data_misses as f64 * 1000.0 / measure as f64;
            let util = |r: &miv_sim::RunResult| r.bus_bytes as f64 / 8.0 * 5.0 / r.cycles as f64;
            println!(
                "{:<8} {:>4}K | {:>6.3} {:>8.2} {:>6.2} | {:>6.3} {:>8.2} {:>6.2} {:>7.2} {:>6.2} | {:>6.3} {:>6.3}",
                bench.name(),
                l2_kb,
                base.ipc,
                mpki(&base),
                util(&base),
                chash.ipc,
                mpki(&chash),
                util(&chash),
                chash.hash_hit_rate,
                chash.extra_loads_per_miss,
                chash.ipc / base.ipc,
                naive.ipc / base.ipc,
            );
        }
    }
}
