//! General-purpose simulator front end: run any scheme/machine/workload
//! combination, record traces, replay trace files, export JSON metrics
//! and event traces.
//!
//! ```text
//! # one run, text output
//! mivsim run --scheme chash --l2 1M --bench swim --measure 500000
//!
//! # the command defaults to `run` (and the workload to gzip), so a
//! # telemetry-capturing run is just:
//! mivsim --scheme chash --metrics-out m.json --trace-events e.jsonl
//!
//! # sweep all schemes over one workload, JSON to stdout
//! mivsim sweep --bench mcf --l2 256K --json
//!
//! # scripted adversary campaign: coverage matrix + detection latency
//! mivsim attack --quick --seed 7 --jobs 2 --metrics-out attack.json
//!
//! # record 1M instructions of a benchmark trace to a file, then replay it
//! mivsim record --bench gzip --count 1000000 --out gzip.trc
//! mivsim run --scheme naive --trace gzip.trc --working-set 640K
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use miv_adversary::{CampaignSpec, OfflineSpec};
use miv_core::timing::Scheme;
use miv_hash::{HashAlgo, Throughput};
use miv_obs::JsonValue;
use miv_sim::attack::{
    attack_document, attack_events_jsonl, render_offline_report, render_report, run_campaign,
    run_offline_campaign,
};
use miv_sim::cli::{
    parse_bench, parse_custom_profile, parse_policy, parse_scheme, parse_size, CommonOpts,
};
use miv_sim::profile::{
    folded_output, profile_document, render_profile, run_drift_check, run_profile, ProfileSpec,
};
use miv_sim::report::{f2, f3, pct, Table};
use miv_sim::serve::{
    fold_telemetry, render_serve, run_serve, serve_document, ServeSpec, ServiceSummary,
    TamperPolicy,
};
use miv_sim::store::{
    default_store_dir, render_fsck, render_soak, render_store_bench, run_fsck, run_soak,
    run_store_bench, store_bench_document, store_fsck_document, store_soak_document, StoreSpec,
};
use miv_sim::telemetry::Sample;
use miv_sim::{RunRequest, RunResult, SweepRunner, System, SystemConfig, Telemetry, Workload};
use miv_trace::{Benchmark, Profile};

const USAGE: &str = "\
usage: mivsim [command] [options]

commands (default: run):
  run      simulate one configuration
  sweep    simulate every scheme on one configuration
  attack   run the scripted adversary campaign (coverage + latency)
  profile  cycle-attribution profile: per-class latency percentiles and
           span trees for every scheme (plus campaign detect spans)
  serve    sharded multi-tenant integrity service: one engine shard per
           tenant on a worker pool, ops/sec + per-class latency report
  store    persistent verified block store: `store bench` (page × cache
           grid, modeled latency histograms), `store soak` (open/write/
           commit/reopen/verify treadmill), `store fsck` (crash-point
           matrix: recover a committed root at every device step)
  record   write a synthetic benchmark trace to a file

options:
  --scheme base|naive|chash|mhash|ihash   (run; default chash)
  --bench gcc|gzip|mcf|twolf|vortex|vpr|applu|art|swim  (default gzip)
  --custom SPEC           synthetic workload, e.g. ws=8M,hot=64K,mem=0.4,run=512
  --trace FILE            replay a recorded trace instead of --bench
  --working-set BYTES     protected footprint for --trace runs (e.g. 8M)
  --l2 SIZE               L2 capacity, e.g. 256K, 1M, 4M (default 1M)
  --line 64|128           L2 line size (default 64)
  --warmup N / --measure N / --seed N
  --hash-gbps F           hash unit throughput (default 3.2)
  --hash md5|sha1|sha256  (attack/serve/store) hash unit for the
                          functional engines (default md5; the timing
                          model is unchanged, so latency tables stay
                          comparable across units)
  --buffers N             read/write buffer entries (default 16)
  --policy lru|fifo|random             L2 replacement policy
  --jobs N                sweep worker threads (0 or omitted: one per core;
                          --trace replays always run sequentially)
  --protected SIZE        protected segment size (default 256M)
  --block-on-verify       disable speculative use of unverified data
  --no-write-alloc-opt    disable the whole-line overwrite optimization
  --count N / --out FILE  (record)
  --shards N              (serve) tenant count (default: quick 4, full 8)
  --requests N            (serve) requests per tenant stream
  --tamper all|off|N      (serve) end-of-stream tamper probes: every
                          tenant, none, or tenant N only (default all)
  --dir PATH              (store) scratch directory for the bench/soak
                          store files (default: under the OS temp dir,
                          removed afterwards; never part of the report)
  --ops N                 (store) operations per bench cell / soak round
  --quick                 (attack) CI-sized campaign: 2 trials/cell,
                          2500 accesses (default: 5 trials, 20000),
                          plus a CI-sized offline-tamper campaign
                          (profile) short stream + quick campaign
                          (serve) CI-sized service: 4 tenants, short
                          streams
                          (store) CI-sized grid, streams and soak
  --folded FILE           (profile) write flamegraph folded stacks
  --drift-check           (profile) rerun the campaign over derived
                          seeds; exit nonzero if any detection metric
                          drifts outside the stated tolerance
  --json                  emit results as JSON instead of a table
                          (attack: miv-attack-v1; profile: miv-profile-v1;
                          serve: miv-serve-v1; store: miv-store-v1)
  --metrics-out PATH      write a miv-metrics-v1 JSON summary (registry
                          counters, histograms with quantiles, samples)
  --trace-events PATH     write the simulation event stream as JSONL
  --sample-interval N     instructions per time-series sample
                          (default 50000; 0 = one sample for the run)";

#[derive(Debug)]
struct Options {
    command: String,
    scheme: Scheme,
    bench: Option<Benchmark>,
    custom: Option<Profile>,
    trace: Option<String>,
    working_set: u64,
    l2: u64,
    line: u32,
    warmup: u64,
    measure: u64,
    hash_gbps: f64,
    hash: HashAlgo,
    buffers: u32,
    policy: miv_cache::ReplacementPolicy,
    protected: u64,
    block_on_verify: bool,
    write_alloc_opt: bool,
    count: u64,
    out: Option<String>,
    folded: Option<String>,
    drift_check: bool,
    sample_interval: u64,
    shards: Option<u32>,
    requests: Option<u64>,
    tamper: TamperPolicy,
    // `store` subcommand: positional mode (bench|soak|fsck), scratch
    // directory and stream-length override.
    store_mode: Option<String>,
    dir: Option<String>,
    ops: Option<u64>,
    // Whether --l2 / --line were given explicitly: serve has its own
    // spec-sized defaults, so only an explicit flag overrides them.
    l2_set: bool,
    line_set: bool,
    /// The cross-subcommand flags (`--quick`, `--seed`, `--jobs`,
    /// `--json`, `--metrics-out`, `--trace-events`), parsed by the
    /// shared [`CommonOpts`] parser.
    common: CommonOpts,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let first = args.first().ok_or(USAGE.to_string())?;
        // `mivsim --scheme chash ...` means `mivsim run --scheme chash ...`.
        let (command, rest) = if first.starts_with('-') {
            ("run".to_string(), args)
        } else {
            (first.clone(), &args[1..])
        };
        let mut o = Options {
            command,
            scheme: Scheme::CHash,
            bench: None,
            custom: None,
            trace: None,
            working_set: 8 << 20,
            l2: 1 << 20,
            line: 64,
            warmup: 50_000,
            measure: 500_000,
            hash_gbps: 3.2,
            hash: HashAlgo::Md5,
            buffers: 16,
            policy: miv_cache::ReplacementPolicy::Lru,
            protected: 256 << 20,
            block_on_verify: false,
            write_alloc_opt: true,
            count: 1_000_000,
            out: None,
            folded: None,
            drift_check: false,
            sample_interval: 50_000,
            shards: None,
            requests: None,
            tamper: TamperPolicy::EveryTenant,
            store_mode: None,
            dir: None,
            ops: None,
            l2_set: false,
            line_set: false,
            common: CommonOpts::new(),
        };
        let mut it = rest.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--scheme" => {
                    let v = value("--scheme")?;
                    o.scheme = parse_scheme(&v).ok_or_else(|| format!("unknown scheme {v}"))?;
                }
                "--bench" => {
                    let v = value("--bench")?;
                    o.bench =
                        Some(parse_bench(&v).ok_or_else(|| format!("unknown benchmark {v}"))?);
                }
                "--custom" => {
                    let v = value("--custom")?;
                    o.custom = Some(parse_custom_profile(&v)?);
                }
                "--trace" => o.trace = Some(value("--trace")?),
                "--working-set" => {
                    let v = value("--working-set")?;
                    o.working_set = parse_size(&v).ok_or_else(|| format!("bad size {v}"))?;
                }
                "--l2" => {
                    let v = value("--l2")?;
                    o.l2 = parse_size(&v).ok_or_else(|| format!("bad size {v}"))?;
                    o.l2_set = true;
                }
                "--line" => {
                    o.line = value("--line")?.parse().map_err(|_| "bad --line")?;
                    o.line_set = true;
                }
                "--warmup" => o.warmup = value("--warmup")?.parse().map_err(|_| "bad --warmup")?,
                "--measure" => {
                    o.measure = value("--measure")?.parse().map_err(|_| "bad --measure")?
                }
                "--hash-gbps" => {
                    o.hash_gbps = value("--hash-gbps")?
                        .parse()
                        .map_err(|_| "bad --hash-gbps")?
                }
                "--hash" => {
                    let v = value("--hash")?;
                    o.hash = HashAlgo::parse(&v).ok_or_else(|| format!("unknown hash {v}"))?;
                }
                "--buffers" => {
                    o.buffers = value("--buffers")?.parse().map_err(|_| "bad --buffers")?
                }
                "--policy" => {
                    let v = value("--policy")?;
                    o.policy = parse_policy(&v).ok_or_else(|| format!("unknown policy {v}"))?;
                }
                "--protected" => {
                    let v = value("--protected")?;
                    o.protected = parse_size(&v).ok_or_else(|| format!("bad size {v}"))?;
                }
                "--block-on-verify" => o.block_on_verify = true,
                "--no-write-alloc-opt" => o.write_alloc_opt = false,
                "--count" => o.count = value("--count")?.parse().map_err(|_| "bad --count")?,
                "--out" => o.out = Some(value("--out")?),
                "--folded" => o.folded = Some(value("--folded")?),
                "--drift-check" => o.drift_check = true,
                "--sample-interval" => {
                    o.sample_interval = value("--sample-interval")?
                        .parse()
                        .map_err(|_| "bad --sample-interval")?
                }
                "--shards" => {
                    o.shards = Some(value("--shards")?.parse().map_err(|_| "bad --shards")?)
                }
                "--requests" => {
                    o.requests = Some(value("--requests")?.parse().map_err(|_| "bad --requests")?)
                }
                "--tamper" => {
                    o.tamper = match value("--tamper")?.as_str() {
                        "all" => TamperPolicy::EveryTenant,
                        "off" | "none" => TamperPolicy::Off,
                        v => TamperPolicy::Tenant(
                            v.parse().map_err(|_| format!("bad --tamper {v}"))?,
                        ),
                    }
                }
                "--dir" => o.dir = Some(value("--dir")?),
                "--ops" => o.ops = Some(value("--ops")?.parse().map_err(|_| "bad --ops")?),
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => {
                    // `store` takes one positional mode: `mivsim store fsck`.
                    if o.command == "store" && o.store_mode.is_none() && !other.starts_with('-') {
                        o.store_mode = Some(other.to_string());
                    } else if !o.common.accept(other, &mut value)? {
                        return Err(format!("unknown option {other}\n{USAGE}"));
                    }
                }
            }
        }
        // `run`/`sweep` default to the gzip benchmark so that a bare
        // `mivsim --metrics-out m.json` works out of the box.
        if matches!(o.command.as_str(), "run" | "sweep")
            && o.bench.is_none()
            && o.custom.is_none()
            && o.trace.is_none()
        {
            o.bench = Some(Benchmark::Gzip);
        }
        Ok(o)
    }

    fn system_config(&self, scheme: Scheme) -> SystemConfig {
        let mut cfg = SystemConfig::hpca03(scheme, self.l2, self.line)
            .with_hash_throughput(Throughput::gbps(self.hash_gbps))
            .with_buffer_entries(self.buffers);
        cfg.checker.block_on_verify = self.block_on_verify;
        cfg.checker.write_allocate_no_fetch = self.write_alloc_opt;
        cfg.checker.l2_policy = self.policy;
        cfg.checker.protected_bytes = self.protected;
        cfg
    }

    /// Runs one scheme on the selected workload, recording into
    /// `telemetry` when provided.
    fn run_one(
        &self,
        scheme: Scheme,
        telemetry: Option<&Telemetry>,
    ) -> Result<(RunResult, Vec<Sample>), String> {
        if let Some(path) = &self.trace {
            let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let reader = miv_trace::file::read_trace(BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
            let insts: Result<Vec<_>, _> = reader.collect();
            let insts = insts.map_err(|e| format!("{path}: {e}"))?;
            // Replay through a custom profile-free system: reuse System by
            // constructing a profile wrapper is not possible for raw
            // traces, so drive the core directly (one sample for the run).
            let cfg = self.system_config(scheme);
            let mut hierarchy = miv_sim::Hierarchy::new(&cfg);
            if let Some(t) = telemetry {
                hierarchy.attach_observability(t.registry(), t.events().sink());
            }
            let mut core = miv_cpu::Core::new(cfg.core, hierarchy);
            let warm = (self.warmup as usize).min(insts.len());
            core.run(insts[..warm].iter().copied());
            core.port_mut().reset_stats();
            let busy0 = {
                let now = core.now();
                core.port().l2().bus_busy_through(now)
            };
            let stats = core.run(insts[warm..].iter().copied());
            let busy = {
                let now = core.now();
                core.port().l2().bus_busy_through(now) - busy0
            };
            let l2 = core.port().l2().l2_stats();
            let bus = core.port().l2().bus_stats();
            let checker = core.port().l2().stats();
            let hash_hit_rate = if l2.hash.accesses() == 0 {
                1.0
            } else {
                l2.hash.hits() as f64 / l2.hash.accesses() as f64
            };
            let result = RunResult {
                scheme: scheme.label().into(),
                benchmark: path.clone(),
                instructions: stats.instructions,
                cycles: stats.cycles,
                ipc: stats.ipc(),
                l2_data_miss_rate: l2.data.miss_rate(),
                l2_data_misses: l2.data.misses(),
                hash_hit_rate,
                extra_loads_per_miss: if l2.data.misses() == 0 {
                    0.0
                } else {
                    checker.extra_loads() as f64 / l2.data.misses() as f64
                },
                bus_bytes: bus.total_bytes(),
                hash_bytes: bus.hash_bytes(),
                bandwidth_gbps: if stats.cycles == 0 {
                    0.0
                } else {
                    bus.total_bytes() as f64 / stats.cycles as f64
                },
                l2_hash_occupancy: 0.0,
                read_buffer_wait: checker.read_buffer_wait,
            };
            let samples = vec![Sample {
                instructions: stats.instructions,
                cycles: stats.cycles,
                ipc: stats.ipc(),
                l2_data_hit_rate: 1.0 - l2.data.miss_rate(),
                l2_hash_hit_rate: hash_hit_rate,
                bus_utilization: if stats.cycles == 0 {
                    0.0
                } else {
                    busy as f64 / stats.cycles as f64
                },
            }];
            Ok((result, samples))
        } else {
            let mut sys = if let Some(profile) = self.custom {
                System::new(self.system_config(scheme), profile, self.common.seed)
            } else {
                let bench = self.bench.ok_or("need --bench, --custom or --trace")?;
                System::for_benchmark(self.system_config(scheme), bench, self.common.seed)
            };
            if let Some(t) = telemetry {
                sys.attach_telemetry(t);
            }
            Ok(sys.run_sampled(self.warmup, self.measure, self.sample_interval))
        }
    }

    /// Writes the metrics summary and/or event trace files, if requested.
    fn write_telemetry(
        &self,
        telemetry: &Telemetry,
        run: Option<&RunResult>,
        samples: &[Sample],
    ) -> Result<(), String> {
        if let Some(path) = &self.common.metrics_out {
            let doc = match run {
                Some(r) => telemetry.metrics_document(r, samples),
                None => telemetry.aggregate_document(),
            };
            std::fs::write(path, doc.render_pretty()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        if let Some(path) = &self.common.trace_events {
            std::fs::write(path, telemetry.events_jsonl()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {path} ({} events, {} dropped)",
                telemetry.events().records().len(),
                telemetry.events().dropped()
            );
        }
        Ok(())
    }

    fn wants_telemetry(&self) -> bool {
        self.common.metrics_out.is_some() || self.common.trace_events.is_some()
    }
}

fn print_results(results: &[RunResult], json: bool) {
    if json {
        let doc = JsonValue::Array(results.iter().map(RunResult::to_json).collect());
        println!("{}", doc.render_pretty());
        return;
    }
    let mut t = Table::new(vec![
        "scheme".into(),
        "workload".into(),
        "IPC".into(),
        "L2 miss".into(),
        "hash hit".into(),
        "extra/miss".into(),
        "bus MB".into(),
        "GB/s".into(),
    ]);
    for r in results {
        t.row(vec![
            r.scheme.clone(),
            r.benchmark.clone(),
            f3(r.ipc),
            pct(r.l2_data_miss_rate),
            pct(r.hash_hit_rate),
            f2(r.extra_loads_per_miss),
            f2(r.bus_bytes as f64 / 1e6),
            f2(r.bandwidth_gbps),
        ]);
    }
    print!("{}", t.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match opts.command.as_str() {
        "run" => {
            let telemetry = opts.wants_telemetry().then(Telemetry::new);
            opts.run_one(opts.scheme, telemetry.as_ref())
                .and_then(|(r, samples)| {
                    print_results(std::slice::from_ref(&r), opts.common.json);
                    match &telemetry {
                        Some(t) => opts.write_telemetry(t, Some(&r), &samples),
                        None => Ok(()),
                    }
                })
        }
        "sweep" => (|| {
            // One aggregate document across the five schemes: counters
            // sum, so the summary carries no single-run section.
            let telemetry = opts.wants_telemetry().then(Telemetry::new);
            let results = if opts.trace.is_some() {
                // Trace replay drives the core directly and shares the
                // recorders, so it stays sequential regardless of --jobs.
                let mut results = Vec::new();
                for scheme in Scheme::ALL {
                    let (r, _) = opts.run_one(scheme, telemetry.as_ref())?;
                    results.push(r);
                }
                results
            } else {
                let workload: Workload = match opts.custom {
                    Some(profile) => profile.into(),
                    None => opts
                        .bench
                        .ok_or("need --bench, --custom or --trace")?
                        .into(),
                };
                let requests: Vec<RunRequest> = Scheme::ALL
                    .iter()
                    .map(|&scheme| {
                        RunRequest::new(
                            opts.system_config(scheme),
                            workload,
                            opts.warmup,
                            opts.measure,
                            opts.common.seed,
                        )
                        .with_sample_interval(opts.sample_interval)
                    })
                    .collect();
                let mut runner = SweepRunner::new(opts.common.jobs);
                if let Some(t) = &telemetry {
                    runner = runner.capture_telemetry(t.events().capacity());
                }
                let mut results = Vec::new();
                for outcome in runner.run(&requests) {
                    if let (Some(t), Some(snap)) = (&telemetry, &outcome.telemetry) {
                        t.absorb(snap);
                    }
                    results.push(outcome.result);
                }
                results
            };
            print_results(&results, opts.common.json);
            match &telemetry {
                Some(t) => opts.write_telemetry(t, None, &[]),
                None => Ok(()),
            }
        })(),
        "attack" => (|| {
            let mut spec = if opts.common.quick {
                CampaignSpec::quick(opts.common.seed)
            } else {
                CampaignSpec::full(opts.common.seed)
            };
            spec.capture_events = opts.common.trace_events.is_some();
            spec.hash = opts.hash;
            let mut off_spec = if opts.common.quick {
                OfflineSpec::quick(opts.common.seed)
            } else {
                OfflineSpec::full(opts.common.seed)
            };
            off_spec.hash = opts.hash;
            // Pre-flight through the fallible constructors: a bad
            // geometry is a CLI error, not a worker panic.
            spec.validate()
                .map_err(|e| format!("invalid attack configuration: {e}"))?;
            let runner = SweepRunner::new(opts.common.jobs);
            let (outcomes, report) = run_campaign(&spec, &runner);
            let offline = run_offline_campaign(&off_spec, &runner);
            if opts.common.json {
                println!(
                    "{}",
                    attack_document(&spec, &report, &off_spec, &offline).render_pretty()
                );
            } else {
                print!("{}", render_report(&spec, &report));
                println!();
                print!("{}", render_offline_report(&off_spec, &offline));
            }
            if let Some(path) = &opts.common.metrics_out {
                let doc = attack_document(&spec, &report, &off_spec, &offline);
                std::fs::write(path, doc.render_pretty()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            if let Some(path) = &opts.common.trace_events {
                std::fs::write(path, attack_events_jsonl(&outcomes))
                    .map_err(|e| format!("{path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            if report.clean() && offline.clean() {
                Ok(())
            } else {
                Err(format!(
                    "campaign failed: online {} missed / {} false alarms, \
                     offline {} missed / {} false alarms",
                    report.missed_expected,
                    report.false_alarms,
                    offline.missed_expected,
                    offline.false_alarms
                ))
            }
        })(),
        "store" => (|| {
            let mut spec = if opts.common.quick {
                StoreSpec::quick(opts.common.seed)
            } else {
                StoreSpec::full(opts.common.seed)
            };
            if let Some(ops) = opts.ops {
                spec.ops = ops;
            }
            spec.hash = opts.hash;
            // Pre-flight through the fallible geometry checks: a bad
            // grid is a CLI error, not a mid-campaign failure.
            spec.validate()
                .map_err(|e| format!("invalid store configuration: {e}"))?;
            let dir = opts
                .dir
                .clone()
                .map(std::path::PathBuf::from)
                .unwrap_or_else(default_store_dir);
            let mode = opts.store_mode.as_deref().unwrap_or("bench");
            let runner = SweepRunner::new(opts.common.jobs);
            let (text, doc, verdict) = match mode {
                "bench" => {
                    let outcomes = run_store_bench(&spec, &runner, &dir)?;
                    (
                        render_store_bench(&spec, &outcomes),
                        store_bench_document(&spec, &outcomes),
                        Ok(()),
                    )
                }
                "soak" => {
                    let report = run_soak(&spec, &dir)?;
                    let verdict = if report.clean() {
                        Ok(())
                    } else {
                        Err(format!(
                            "soak failed: {} reads disagreed with the model",
                            report.mismatches
                        ))
                    };
                    (
                        render_soak(&spec, &report),
                        store_soak_document(&spec, &report),
                        verdict,
                    )
                }
                "fsck" => {
                    let report = run_fsck(&spec, &runner)?;
                    let verdict = if report.clean() {
                        Ok(())
                    } else {
                        Err(format!(
                            "fsck failed: {} torn crash points (of {})",
                            report.torn.len(),
                            report.points
                        ))
                    };
                    (
                        render_fsck(&spec, &report),
                        store_fsck_document(&spec, &report),
                        verdict,
                    )
                }
                other => return Err(format!("unknown store mode {other}\n{USAGE}")),
            };
            if opts.common.json {
                println!("{}", doc.render_pretty());
            } else {
                print!("{text}");
            }
            if let Some(path) = &opts.common.metrics_out {
                std::fs::write(path, doc.render_pretty()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            verdict
        })(),
        "profile" => (|| {
            let spec = if opts.common.quick {
                ProfileSpec::quick(opts.common.seed)
            } else {
                ProfileSpec::full(opts.common.seed)
            };
            spec.validate()
                .map_err(|e| format!("invalid profile configuration: {e}"))?;
            let runner = SweepRunner::new(opts.common.jobs);
            if opts.drift_check {
                let report = run_drift_check(&spec, &runner)?;
                print!("{report}");
                return Ok(());
            }
            let profiles = run_profile(&spec, &runner);
            if opts.common.json {
                println!("{}", profile_document(&spec, &profiles).render_pretty());
            } else {
                print!("{}", render_profile(&spec, &profiles));
            }
            if let Some(path) = &opts.common.metrics_out {
                let doc = profile_document(&spec, &profiles);
                std::fs::write(path, doc.render_pretty()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            if let Some(path) = &opts.folded {
                std::fs::write(path, folded_output(&profiles))
                    .map_err(|e| format!("{path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            Ok(())
        })(),
        "serve" => (|| {
            let mut spec = if opts.common.quick {
                ServeSpec::quick(opts.common.seed)
            } else {
                ServeSpec::full(opts.common.seed)
            };
            if let Some(shards) = opts.shards {
                spec.shards = shards;
            }
            if let Some(requests) = opts.requests {
                spec.requests = requests;
            }
            if opts.l2_set {
                spec.l2_bytes = opts.l2;
            }
            if opts.line_set {
                spec.line_bytes = opts.line;
            }
            spec.tamper = opts.tamper;
            spec.hash = opts.hash;
            // Pre-flight through the fallible constructors: a bad
            // geometry is a CLI error, not a worker panic.
            spec.validate()
                .map_err(|e| format!("invalid serve configuration: {e}"))?;
            let runner = SweepRunner::new(opts.common.jobs);
            let outcomes = run_serve(&spec, &runner)
                .map_err(|e| format!("invalid serve configuration: {e}"))?;
            if opts.common.json {
                println!("{}", serve_document(&spec, &outcomes).render_pretty());
            } else {
                print!("{}", render_serve(&spec, &outcomes));
            }
            if let Some(path) = &opts.common.metrics_out {
                let doc = serve_document(&spec, &outcomes);
                std::fs::write(path, doc.render_pretty()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            if let Some(path) = &opts.common.trace_events {
                let fold = fold_telemetry(&outcomes);
                std::fs::write(path, fold.events_jsonl()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            let summary = ServiceSummary::from_outcomes(&outcomes);
            if summary.clean() {
                Ok(())
            } else {
                Err(format!(
                    "serve failed: {} of {} tamper probes missed",
                    summary.probes - summary.probes_detected,
                    summary.probes
                ))
            }
        })(),
        "record" => (|| {
            let bench = opts.bench.ok_or("record needs --bench")?;
            let path = opts.out.clone().ok_or("record needs --out FILE")?;
            let file = File::create(&path).map_err(|e| format!("{path}: {e}"))?;
            let trace = bench.trace(opts.common.seed).take(opts.count as usize);
            let n = miv_trace::file::write_trace(BufWriter::new(file), trace)
                .map_err(|e| format!("{path}: {e}"))?;
            let _: Profile = bench.profile();
            eprintln!("wrote {n} records to {path}");
            Ok(())
        })(),
        _ => Err(USAGE.to_string()),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
