//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p miv-sim --release --bin figures -- all
//! cargo run -p miv-sim --release --bin figures -- fig3 fig5
//! cargo run -p miv-sim --release --bin figures -- --quick fig3
//! cargo run -p miv-sim --release --bin figures -- --measure 2000000 fig6
//! cargo run -p miv-sim --release --bin figures -- --json data.json export
//! ```

use std::process::ExitCode;

use miv_sim::experiments::{self, ExperimentConfig, Figure};

const USAGE: &str = "usage: figures [--quick] [--warmup N] [--measure N] [--seed N] \
[--json PATH] <artifact>...\n  artifacts: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 claims all export\n  export writes the raw measured rows of every figure as JSON (--json PATH, default stdout)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut xp = ExperimentConfig::default();
    let mut targets: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => xp = ExperimentConfig::quick(),
            "--json" => {
                let Some(v) = it.next() else {
                    eprintln!("--json needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                json_path = Some(v.clone());
            }
            "--warmup" | "--measure" | "--seed" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("{arg} needs a numeric value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--warmup" => xp.warmup = v,
                    "--measure" => xp.measure = v,
                    _ => xp.seed = v,
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            target => targets.push(target.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "# warmup {} + measure {} instructions per run, seed {}",
        xp.warmup, xp.measure, xp.seed
    );
    for target in targets {
        let figures: Vec<Figure> = match target.as_str() {
            "table1" => vec![experiments::table1()],
            "fig1" => vec![experiments::fig1()],
            "fig2" => vec![experiments::fig2()],
            "fig3" => vec![experiments::fig3(&xp)],
            "fig4" => vec![experiments::fig4(&xp)],
            "fig5" => vec![experiments::fig5(&xp)],
            "fig6" => vec![experiments::fig6(&xp)],
            "fig7" => vec![experiments::fig7(&xp)],
            "fig8" => vec![experiments::fig8(&xp)],
            "claims" => vec![experiments::claims(&xp)],
            "all" => experiments::all(&xp),
            "export" => {
                let data = experiments::export_data(&xp);
                let json = serde_json::to_string_pretty(&data).expect("serializable");
                match &json_path {
                    Some(path) => {
                        if let Err(e) = std::fs::write(path, &json) {
                            eprintln!("{path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("wrote {path}");
                    }
                    None => println!("{json}"),
                }
                continue;
            }
            other => {
                eprintln!("unknown artifact {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        for figure in figures {
            println!("{figure}");
        }
    }
    ExitCode::SUCCESS
}
