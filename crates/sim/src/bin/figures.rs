//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p miv-sim --release --bin figures -- all
//! cargo run -p miv-sim --release --bin figures -- fig3 fig5
//! cargo run -p miv-sim --release --bin figures -- --quick fig3
//! cargo run -p miv-sim --release --bin figures -- --measure 2000000 fig6
//! cargo run -p miv-sim --release --bin figures -- --json data.json export
//! cargo run -p miv-sim --release --bin figures -- --metrics-out m.json --quick fig4
//! ```

use std::process::ExitCode;

use miv_sim::experiments::{self, ExperimentConfig, Figure};
use miv_sim::Telemetry;

const USAGE: &str = "usage: figures [--quick] [--warmup N] [--measure N] [--seed N] \
[--json PATH] [--metrics-out PATH] [--trace-events PATH] <artifact>...\n  \
artifacts: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 claims all export\n  \
export writes the raw measured rows of every figure as JSON (--json PATH, default stdout)\n  \
--metrics-out aggregates every run's telemetry into one miv-metrics-v1 JSON file;\n  \
--trace-events writes the tail of the simulation event stream as JSONL";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut xp = ExperimentConfig::default();
    let mut targets: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_events: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => xp = ExperimentConfig::quick(),
            "--json" | "--metrics-out" | "--trace-events" => {
                let Some(v) = it.next() else {
                    eprintln!("{arg} needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--json" => json_path = Some(v.clone()),
                    "--metrics-out" => metrics_out = Some(v.clone()),
                    _ => trace_events = Some(v.clone()),
                }
            }
            "--warmup" | "--measure" | "--seed" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("{arg} needs a numeric value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--warmup" => xp.warmup = v,
                    "--measure" => xp.measure = v,
                    _ => xp.seed = v,
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            target => targets.push(target.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "# warmup {} + measure {} instructions per run, seed {}",
        xp.warmup, xp.measure, xp.seed
    );
    let telemetry = (metrics_out.is_some() || trace_events.is_some()).then(Telemetry::new);
    let run_all = || -> Result<(), String> {
        for target in &targets {
            let figures: Vec<Figure> = match target.as_str() {
                "table1" => vec![experiments::table1()],
                "fig1" => vec![experiments::fig1()],
                "fig2" => vec![experiments::fig2()],
                "fig3" => vec![experiments::fig3(&xp)],
                "fig4" => vec![experiments::fig4(&xp)],
                "fig5" => vec![experiments::fig5(&xp)],
                "fig6" => vec![experiments::fig6(&xp)],
                "fig7" => vec![experiments::fig7(&xp)],
                "fig8" => vec![experiments::fig8(&xp)],
                "claims" => vec![experiments::claims(&xp)],
                "all" => experiments::all(&xp),
                "export" => {
                    let json = experiments::export_data(&xp).to_json().render_pretty();
                    match &json_path {
                        Some(path) => {
                            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
                            eprintln!("wrote {path}");
                        }
                        None => println!("{json}"),
                    }
                    continue;
                }
                other => return Err(format!("unknown artifact {other}\n{USAGE}")),
            };
            for figure in figures {
                println!("{figure}");
            }
        }
        Ok(())
    };
    let outcome = match &telemetry {
        Some(t) => experiments::with_telemetry(t, run_all),
        None => run_all(),
    };
    if let Err(msg) = outcome {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    if let Some(t) = &telemetry {
        if let Some(path) = &metrics_out {
            let doc = t.aggregate_document().render_pretty();
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        if let Some(path) = &trace_events {
            if let Err(e) = std::fs::write(path, t.events_jsonl()) {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {path} ({} events, {} dropped)",
                t.events().records().len(),
                t.events().dropped()
            );
        }
    }
    ExitCode::SUCCESS
}
