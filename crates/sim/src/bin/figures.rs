//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p miv-sim --release --bin figures -- all
//! cargo run -p miv-sim --release --bin figures -- fig3 fig5
//! cargo run -p miv-sim --release --bin figures -- --quick --only fig3
//! cargo run -p miv-sim --release --bin figures -- --measure 2000000 fig6
//! cargo run -p miv-sim --release --bin figures -- --jobs 8 all
//! cargo run -p miv-sim --release --bin figures -- --json data.json export
//! cargo run -p miv-sim --release --bin figures -- --metrics-out m.json --quick fig4
//! ```

use std::process::ExitCode;

use miv_sim::experiments::{self, ExperimentConfig, RunCtx};
use miv_sim::{SweepRunner, Telemetry};

const USAGE: &str = "usage: figures [--quick] [--jobs N] [--warmup N] [--measure N] [--seed N] \
[--json PATH] [--metrics-out PATH] [--trace-events PATH] [--only ID] <artifact>...\n  \
artifacts: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 hashes claims all export\n  \
export writes the raw measured rows of every figure as JSON (--json PATH, default stdout)\n  \
--jobs runs sweeps on N worker threads (0 or omitted: one per core); the\n  \
rendered output is byte-identical at any thread count\n  \
--only ID selects one artifact (equivalent to naming it positionally)\n  \
--metrics-out aggregates every run's telemetry into one miv-metrics-v1 JSON file;\n  \
--trace-events writes the tail of the simulation event stream as JSONL";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut xp = ExperimentConfig::default();
    let mut targets: Vec<String> = Vec::new();
    let mut jobs: usize = 0;
    let mut json_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_events: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => xp = ExperimentConfig::quick(),
            "--json" | "--metrics-out" | "--trace-events" | "--only" => {
                let Some(v) = it.next() else {
                    eprintln!("{arg} needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--json" => json_path = Some(v.clone()),
                    "--metrics-out" => metrics_out = Some(v.clone()),
                    "--trace-events" => trace_events = Some(v.clone()),
                    _ => targets.push(v.clone()),
                }
            }
            "--warmup" | "--measure" | "--seed" | "--jobs" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("{arg} needs a numeric value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--warmup" => xp.warmup = v,
                    "--measure" => xp.measure = v,
                    "--seed" => xp.seed = v,
                    _ => jobs = v as usize,
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            target => targets.push(target.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let resolved_jobs = if jobs == 0 {
        SweepRunner::available_jobs()
    } else {
        jobs
    };
    eprintln!(
        "# warmup {} + measure {} instructions per run, seed {}, {} worker(s)",
        xp.warmup, xp.measure, xp.seed, resolved_jobs
    );
    let telemetry = (metrics_out.is_some() || trace_events.is_some()).then(Telemetry::new);
    let mut ctx = RunCtx::new(xp).with_jobs(jobs);
    if let Some(t) = &telemetry {
        ctx = ctx.record_into(t);
    }
    let run_all = || -> Result<(), String> {
        for target in &targets {
            match target.as_str() {
                "all" => {
                    for figure in experiments::all(&ctx) {
                        println!("{figure}");
                    }
                }
                "export" => {
                    let json = experiments::export_data(&ctx).render_pretty();
                    match &json_path {
                        Some(path) => {
                            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
                            eprintln!("wrote {path}");
                        }
                        None => println!("{json}"),
                    }
                }
                id => match experiments::find_experiment(id) {
                    Some(experiment) => println!("{}", experiment.render(&ctx)),
                    None => return Err(format!("unknown artifact {id}\n{USAGE}")),
                },
            }
        }
        Ok(())
    };
    if let Err(msg) = run_all() {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    if let Some(t) = &telemetry {
        if let Some(path) = &metrics_out {
            let doc = t.aggregate_document().render_pretty();
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        if let Some(path) = &trace_events {
            if let Err(e) = std::fs::write(path, t.events_jsonl()) {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {path} ({} events, {} dropped)",
                t.events().records().len(),
                t.events().dropped()
            );
        }
    }
    ExitCode::SUCCESS
}
