//! The L1 + L2/checker memory hierarchy behind the core's
//! [`MemoryPort`].

use miv_cache::{Cache, CacheObserver, LineKind};
use miv_core::timing::L2Controller;
use miv_cpu::{Cycle, MemoryPort};
use miv_obs::{EventSink, Registry};

use crate::config::SystemConfig;

/// The full memory hierarchy: an L1 data cache in front of the
/// checker-integrated L2.
///
/// Instruction fetch is not modelled (the paper's 64 KB L1 I-cache makes
/// SPEC I-misses negligible); the L1 D-cache filters the core's
/// loads/stores, and its misses and dirty write-backs flow into the
/// [`L2Controller`], which owns the L2, the hash machinery, the memory
/// bus and DRAM.
#[derive(Debug)]
pub struct Hierarchy {
    l1: Cache,
    l1_latency: u64,
    l2: L2Controller,
    l1_writebacks: u64,
}

impl Hierarchy {
    /// Builds the hierarchy for a machine configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Hierarchy {
            l1: Cache::new(config.l1),
            l1_latency: config.l1_latency,
            l2: L2Controller::new(config.checker, config.l2, config.bus),
            l1_writebacks: 0,
        }
    }

    /// Wires the whole hierarchy into a metrics registry and event
    /// stream: L1 counters under `l1.*`, and the L2 controller's caches,
    /// bus, hash unit and walk-depth histogram under their own prefixes.
    pub fn attach_observability(&mut self, registry: &Registry, events: EventSink) {
        self.l1
            .set_observer(CacheObserver::for_registry(registry, "l1"));
        self.l2.attach_observability(registry, events);
    }

    /// The L1 data cache (for statistics).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 controller (for statistics).
    pub fn l2(&self) -> &L2Controller {
        &self.l2
    }

    /// The L2 capacity in bytes (for warm-up sizing).
    pub fn l2_capacity_bytes(&self) -> u64 {
        self.l2.l2_config().size_bytes
    }

    /// Dirty L1 lines written back into the L2.
    pub fn l1_writebacks(&self) -> u64 {
        self.l1_writebacks
    }

    /// Clears all statistics after warm-up.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l1_writebacks = 0;
    }

    /// An L1 access; on a miss the L2 (and checker) are consulted.
    fn access(&mut self, now: Cycle, addr: u64, write: bool, full_line: bool) -> Cycle {
        if self.l1.lookup(addr, LineKind::Data, write).is_hit() {
            return now + self.l1_latency;
        }
        // Miss: fetch through the L2 side. A whole-L2-line overwrite is
        // only recognizable when the L1 line covers the L2 line; with the
        // Table 1 geometry (32 B L1 / 64 B L2) a streaming run still
        // overwrites the L2 line in two L1 allocations, so we forward the
        // hint as-is and let the controller decide.
        let ready = self
            .l2
            .access(now + self.l1_latency, addr, write, full_line);
        if let Some(ev) = self.l1.fill(addr, LineKind::Data, write) {
            if ev.dirty {
                // L1 victim write-back: an L2 write access.
                self.l1_writebacks += 1;
                self.l2.access(ready, ev.addr, true, false);
            }
        }
        ready
    }
}

impl MemoryPort for Hierarchy {
    fn load(&mut self, now: Cycle, addr: u64) -> Cycle {
        self.access(now, addr, false, false)
    }

    fn store(&mut self, now: Cycle, addr: u64, full_line: bool) -> Cycle {
        self.access(now, addr, true, full_line)
    }

    fn verification_horizon(&self) -> Cycle {
        self.l2.verification_horizon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_core::timing::Scheme;

    fn hier(scheme: Scheme) -> Hierarchy {
        let mut cfg = crate::SystemConfig::hpca03(scheme, 256 << 10, 64);
        cfg.checker.protected_bytes = 16 << 20;
        Hierarchy::new(&cfg)
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut h = hier(Scheme::Base);
        let t1 = h.load(0, 0x100);
        assert!(t1 > 100, "cold miss reaches memory");
        let t2 = h.load(t1, 0x100);
        assert_eq!(t2, t1 + 2, "L1 hit costs 2 cycles");
        let t3 = h.load(t2, 0x108);
        assert_eq!(t3, t2 + 2, "same 32-B line");
    }

    #[test]
    fn l1_filters_l2_traffic() {
        let mut h = hier(Scheme::CHash);
        let mut now = 0;
        // Sequential word walk: 1 L1 miss per 4 words (32-B lines).
        for i in 0..4096u64 {
            now = h.load(now, i * 8);
        }
        let l1 = h.l1().stats().data;
        assert_eq!(l1.read_misses, 4096 / 4);
        let l2 = h.l2().l2_stats().data;
        assert_eq!(l2.read_misses + l2.read_hits, l1.read_misses);
        // 64-B L2 lines: about half the L1 misses hit in L2. (Not exactly
        // half: a data chunk whose ancestor hash chunks land in its own
        // L2 set can be conflict-evicted by its own verification walk.)
        let diff = l2.read_hits.abs_diff(l2.read_misses);
        assert!(
            diff <= 16,
            "hits {} vs misses {}",
            l2.read_hits,
            l2.read_misses
        );
    }

    #[test]
    fn dirty_l1_victims_reach_l2() {
        let mut h = hier(Scheme::Base);
        let mut now = 0;
        // Write far more distinct lines than L1 holds.
        for i in 0..20_000u64 {
            now = h.store(now, (i * 32 * 7) % (8 << 20), false);
        }
        assert!(h.l1_writebacks() > 0);
    }

    #[test]
    fn verification_horizon_passthrough() {
        let mut h = hier(Scheme::CHash);
        assert_eq!(h.verification_horizon(), 0);
        h.load(0, 0x4000);
        assert!(h.verification_horizon() > 0);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut h = hier(Scheme::CHash);
        h.load(0, 0);
        h.reset_stats();
        assert_eq!(h.l1().stats().data.accesses(), 0);
        assert_eq!(h.l2().l2_stats().data.accesses(), 0);
        assert_eq!(h.l1_writebacks(), 0);
    }
}
