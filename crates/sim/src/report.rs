//! Plain-text table rendering for the experiment harness.

/// A simple aligned-column text table.
///
/// # Examples
///
/// ```
/// use miv_sim::report::Table;
///
/// let mut t = Table::new(vec!["bench".into(), "ipc".into()]);
/// t.row(vec!["gcc".into(), "1.23".into()]);
/// let text = t.render();
/// assert!(text.contains("gcc"));
/// assert!(text.contains("ipc"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns. A table with no columns
    /// renders as the empty string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        if cols == 0 {
            return String::new();
        }
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                let cell = &cells[i];
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        out.push_str(&format!("{}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with 3 significant decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn zero_column_table_renders_empty() {
        // Regression: `2 * (cols - 1)` underflowed for a header-less
        // table; it must render as the empty string instead of panicking.
        let t = Table::new(vec![]);
        assert_eq!(t.render(), "");
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
