//! `mivsim store`: drives the persistent verified block store
//! (`miv-store`) through three deterministic campaigns.
//!
//! * **bench** — a page-size × cache-size grid of seeded read/write
//!   workloads against real files, folding per-op modeled device
//!   latency into log2 histograms and cache hit-rate gauges. The grid
//!   fans out over [`SweepRunner::run_tasks`] (one file pair per cell,
//!   so workers never share a medium) and folds in grid order, which
//!   makes the `miv-store-v1` document byte-identical at any `--jobs`.
//! * **soak** — sequential open → write → commit → close → reopen →
//!   verify rounds against one file pair, with every read checked
//!   against an in-memory model; the durability treadmill.
//! * **fsck** — the crash-point matrix: a scripted two-commit workload
//!   is killed at *every* mutating device step (each point is an
//!   independent task on the worker pool), recovered from the trusted
//!   root, fully verified, and required to match one of the committed
//!   states byte-exactly — never a torn mixture.
//!
//! Latency figures are *modeled* ticks — a pure function of the
//! [`StoreStats`] deltas and the cost constants below, never of the
//! host filesystem — so reports stay deterministic on any machine.
//!
//! # Examples
//!
//! ```
//! use miv_sim::store::{run_fsck, StoreSpec};
//! use miv_sim::SweepRunner;
//!
//! let mut spec = StoreSpec::quick(7);
//! spec.ops = 40; // doctest-sized
//! let report = run_fsck(&spec, &SweepRunner::new(2)).unwrap();
//! assert!(report.clean());
//! assert!(report.recovered_old > 0 && report.recovered_new > 0);
//! ```

use std::path::{Path, PathBuf};

use miv_adversary::cell_seed;
use miv_hash::HashAlgo;
use miv_obs::{HistogramSnapshot, JsonValue, Registry, Rng};
use miv_store::{
    BlockStore, CrashMedium, FileMedium, FileRootStore, MemMedium, MemRootStore, StoreConfig,
    StoreError, StoreStats,
};

use crate::report::{f2, pct, Table};
use crate::sweep::SweepRunner;
use crate::telemetry::Telemetry;

/// Seed lane for store cells: keeps bench-cell seeds disjoint from the
/// online campaign (lanes 0..n_schemes) and the offline campaign (64).
const STORE_SEED_LANE: usize = 96;

/// Modeled ticks for a page-sized device read (seek + transfer).
pub const READ_PAGE_TICKS: u64 = 120;
/// Modeled ticks for a device write (page, journal frame or superblock).
pub const WRITE_PAGE_TICKS: u64 = 180;
/// Modeled ticks for hashing one page.
pub const HASH_PAGE_TICKS: u64 = 40;
/// Modeled ticks for a sync barrier.
pub const SYNC_TICKS: u64 = 600;
/// Modeled ticks for a trusted-cache hit.
pub const CACHE_HIT_TICKS: u64 = 4;

/// Everything the store campaigns need: plain data, fully determining
/// every report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSpec {
    /// Master seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Protected data region per store, in bytes.
    pub data_bytes: u64,
    /// Page sizes (tree chunk bytes) on the bench grid.
    pub page_sizes: Vec<u32>,
    /// Trusted-cache capacities (pages) on the bench grid.
    pub cache_sizes: Vec<usize>,
    /// Operations per bench cell / soak round.
    pub ops: u64,
    /// Store fraction of the op stream, in percent.
    pub write_pct: u32,
    /// Explicit commit every this many ops (bench and soak).
    pub commit_every: u64,
    /// Soak rounds (each ends in close + reopen + verify).
    pub soak_rounds: u32,
    /// Hash unit for every store's tree pages.
    pub hash: HashAlgo,
}

impl StoreSpec {
    /// The CI-sized campaign: small stores, short streams.
    pub fn quick(seed: u64) -> Self {
        StoreSpec {
            seed,
            data_bytes: 32 << 10,
            page_sizes: vec![128, 256],
            cache_sizes: vec![8, 16],
            ops: 400,
            write_pct: 60,
            commit_every: 64,
            soak_rounds: 3,
            hash: HashAlgo::Md5,
        }
    }

    /// The full campaign.
    pub fn full(seed: u64) -> Self {
        StoreSpec {
            seed,
            data_bytes: 128 << 10,
            page_sizes: vec![128, 256, 512],
            cache_sizes: vec![12, 24, 48],
            ops: 4000,
            write_pct: 60,
            commit_every: 512,
            soak_rounds: 8,
            hash: HashAlgo::Md5,
        }
    }

    /// Pre-flights every geometry the campaigns will build — each bench
    /// cell plus the soak and fsck configs — through the store's own
    /// fallible validation, so `mivsim store` rejects a bad spec before
    /// fanning work out to the pool.
    pub fn validate(&self) -> Result<(), String> {
        for cell in self.bench_cells() {
            let config = StoreConfig {
                data_bytes: cell.data_bytes,
                page_bytes: cell.page_bytes,
                cache_pages: cell.cache_pages,
                journal_slots: 0,
            };
            config
                .validate()
                .map_err(|e| format!("bench p{} c{}: {e}", cell.page_bytes, cell.cache_pages))?;
        }
        StoreConfig {
            data_bytes: self.data_bytes,
            page_bytes: self.page_sizes[0],
            cache_pages: self.cache_sizes[0],
            journal_slots: 0,
        }
        .validate()
        .map_err(|e| format!("soak: {e}"))?;
        fsck_config(self)
            .validate()
            .map_err(|e| format!("fsck: {e}"))
    }

    /// The bench grid in report order (page size outer, cache inner).
    pub fn bench_cells(&self) -> Vec<BenchCell> {
        let mut cells = Vec::new();
        for (pi, &page_bytes) in self.page_sizes.iter().enumerate() {
            for (ci, &cache_pages) in self.cache_sizes.iter().enumerate() {
                cells.push(BenchCell {
                    seed: cell_seed(self.seed, STORE_SEED_LANE, pi * 16 + ci, 0),
                    data_bytes: self.data_bytes,
                    page_bytes,
                    cache_pages,
                    ops: self.ops,
                    write_pct: self.write_pct,
                    commit_every: self.commit_every,
                    hash: self.hash,
                });
            }
        }
        cells
    }
}

/// One bench grid point: plain data, safe to hand to any worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchCell {
    /// Derived cell seed.
    pub seed: u64,
    /// Data region size in bytes.
    pub data_bytes: u64,
    /// Page (tree chunk) size in bytes.
    pub page_bytes: u32,
    /// Trusted-cache capacity in pages.
    pub cache_pages: usize,
    /// Operations in the stream.
    pub ops: u64,
    /// Store fraction in percent.
    pub write_pct: u32,
    /// Explicit commit cadence.
    pub commit_every: u64,
    /// Hash unit for the store's tree pages.
    pub hash: HashAlgo,
}

/// What one bench cell produced.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// The cell that ran.
    pub cell: BenchCell,
    /// Device and cache counters at end of stream.
    pub stats: StoreStats,
    /// Tree pages verified by the end-of-stream full walk.
    pub verified_pages: u64,
    /// Final committed generation.
    pub generation: u64,
    /// Per-op modeled latency distribution (ticks).
    pub latency: HistogramSnapshot,
}

impl BenchOutcome {
    /// Trusted-cache hit rate over the whole stream.
    pub fn hit_rate(&self) -> f64 {
        let total = self.stats.cache_hits + self.stats.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.stats.cache_hits as f64 / total as f64
        }
    }
}

fn modeled_ticks(before: &StoreStats, after: &StoreStats) -> u64 {
    (after.cache_hits - before.cache_hits) * CACHE_HIT_TICKS
        + (after.device_reads - before.device_reads) * READ_PAGE_TICKS
        + (after.device_writes - before.device_writes) * WRITE_PAGE_TICKS
        + (after.pages_hashed - before.pages_hashed) * HASH_PAGE_TICKS
        + (after.syncs - before.syncs) * SYNC_TICKS
}

/// Runs one scripted op stream against an open store, recording per-op
/// modeled latency into `latency` and mirroring writes into `model`
/// when provided (reads are then checked against it; the mismatch
/// count comes back).
fn drive_stream<M, R>(
    store: &mut BlockStore<M, R>,
    rng: &mut Rng,
    ops: u64,
    write_pct: u32,
    commit_every: u64,
    latency: &miv_obs::Histogram,
    mut model: Option<&mut Vec<u8>>,
) -> Result<u64, StoreError>
where
    M: miv_store::StoreMedium,
    R: miv_store::RootStore,
{
    let data_bytes = store.geometry().layout().data_bytes();
    let mut mismatches = 0u64;
    for op in 1..=ops {
        let len = rng.gen_range_u64(16, 129) as usize;
        let addr = rng.gen_range_u64(0, data_bytes - len as u64);
        let is_write = rng.gen_range_u64(0, 100) < write_pct as u64;
        let before = store.stats();
        if is_write {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            store.write(addr, &buf)?;
            if let Some(model) = model.as_deref_mut() {
                model[addr as usize..addr as usize + len].copy_from_slice(&buf);
            }
        } else {
            let got = store.read_vec(addr, len)?;
            if let Some(model) = model.as_deref_mut() {
                if got != model[addr as usize..addr as usize + len] {
                    mismatches += 1;
                }
            }
        }
        if commit_every > 0 && op % commit_every == 0 {
            store.commit()?;
        }
        let after = store.stats();
        latency.record(modeled_ticks(&before, &after));
    }
    store.commit()?;
    Ok(mismatches)
}

fn cell_paths(dir: &Path, cell: &BenchCell) -> (PathBuf, PathBuf) {
    let stem = format!("bench-p{}-c{}", cell.page_bytes, cell.cache_pages);
    (
        dir.join(format!("{stem}.img")),
        dir.join(format!("{stem}.root")),
    )
}

/// Runs one bench cell against its own file pair under `dir`.
pub fn run_bench_cell(cell: &BenchCell, dir: &Path) -> Result<BenchOutcome, String> {
    let (img, root) = cell_paths(dir, cell);
    let fail = |e: StoreError| format!("bench p{} c{}: {e}", cell.page_bytes, cell.cache_pages);
    let medium = FileMedium::create(&img).map_err(|e| format!("{}: {e}", img.display()))?;
    let config = StoreConfig {
        data_bytes: cell.data_bytes,
        page_bytes: cell.page_bytes,
        cache_pages: cell.cache_pages,
        journal_slots: 0,
    };
    let mut store =
        BlockStore::create(medium, FileRootStore::new(root), config, cell.hash.hasher())
            .map_err(fail)?;
    let registry = Registry::new();
    let latency = registry.histogram("store.op_ticks");
    let mut rng = Rng::seed_from_u64(cell.seed);
    drive_stream(
        &mut store,
        &mut rng,
        cell.ops,
        cell.write_pct,
        cell.commit_every,
        &latency,
        None,
    )
    .map_err(fail)?;
    let verified_pages = store.verify_all().map_err(fail)?;
    Ok(BenchOutcome {
        cell: *cell,
        stats: store.stats(),
        verified_pages,
        generation: store.generation(),
        latency: latency.snapshot(),
    })
}

/// Fans the bench grid out over `runner`'s worker pool. Each cell owns
/// a private file pair under `dir` (created if missing); the files are
/// removed afterwards, and `dir` itself is removed when it ends up
/// empty. Outcomes come back in grid order.
pub fn run_store_bench(
    spec: &StoreSpec,
    runner: &SweepRunner,
    dir: &Path,
) -> Result<Vec<BenchOutcome>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let cells = spec.bench_cells();
    let results = runner.run_tasks(&cells, |cell| run_bench_cell(cell, dir));
    for cell in &cells {
        let (img, root) = cell_paths(dir, cell);
        let _ = std::fs::remove_file(img);
        let _ = std::fs::remove_file(root);
    }
    let _ = std::fs::remove_dir(dir);
    results.into_iter().collect()
}

/// What the soak treadmill measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakReport {
    /// Rounds completed (each ends in close + reopen + verify).
    pub rounds: u32,
    /// Ops per round.
    pub ops: u64,
    /// Final committed generation after the last reopen.
    pub generation: u64,
    /// Journal frames redone across all reopens. Nonzero even for
    /// clean closes: the committed journal prefix is part of the
    /// committed state, and open re-applies it idempotently because it
    /// cannot know whether the post-commit fold finished.
    pub replayed_entries: u64,
    /// Tree pages verified by the final full walk.
    pub verified_pages: u64,
    /// Reads that disagreed with the in-memory model (must be 0).
    pub mismatches: u64,
}

impl SoakReport {
    /// No read ever disagreed with the model.
    pub fn clean(&self) -> bool {
        self.mismatches == 0
    }
}

/// Runs the soak treadmill: `spec.soak_rounds` rounds of open → ops →
/// commit → close → reopen → verify against one file pair under `dir`.
/// Sequential by design — the rounds share the store file.
pub fn run_soak(spec: &StoreSpec, dir: &Path) -> Result<SoakReport, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let img = dir.join("soak.img");
    let root = dir.join("soak.root");
    let config = StoreConfig {
        data_bytes: spec.data_bytes,
        page_bytes: spec.page_sizes[0],
        cache_pages: spec.cache_sizes[0],
        journal_slots: 0,
    };
    let fail = |stage: &str| {
        let stage = stage.to_string();
        move |e: StoreError| format!("soak {stage}: {e}")
    };
    let registry = Registry::new();
    let latency = registry.histogram("store.op_ticks");
    let mut model = vec![0u8; spec.data_bytes as usize];
    let mut rng = Rng::seed_from_u64(cell_seed(spec.seed, STORE_SEED_LANE, 255, 0));
    let mut mismatches = 0u64;
    let mut replayed = 0u64;

    let medium = FileMedium::create(&img).map_err(|e| format!("{}: {e}", img.display()))?;
    let mut store = BlockStore::create(
        medium,
        FileRootStore::new(root.clone()),
        config,
        spec.hash.hasher(),
    )
    .map_err(fail("create"))?;
    for round in 0..spec.soak_rounds {
        mismatches += drive_stream(
            &mut store,
            &mut rng,
            spec.ops,
            spec.write_pct,
            spec.commit_every,
            &latency,
            Some(&mut model),
        )
        .map_err(fail("round"))?;
        drop(store);
        let medium = FileMedium::open(&img).map_err(|e| format!("{}: {e}", img.display()))?;
        let (reopened, recovery) = BlockStore::open(
            medium,
            FileRootStore::new(root.clone()),
            spec.hash.hasher(),
            config.cache_pages,
        )
        .map_err(fail("reopen"))?;
        store = reopened;
        replayed += recovery.replayed_entries;
        let check = store
            .read_vec(0, spec.data_bytes as usize)
            .map_err(fail("readback"))?;
        if check != model {
            mismatches += 1;
        }
        let _ = round;
    }
    let verified_pages = store.verify_all().map_err(fail("verify"))?;
    let report = SoakReport {
        rounds: spec.soak_rounds,
        ops: spec.ops,
        generation: store.generation(),
        replayed_entries: replayed,
        verified_pages,
        mismatches,
    };
    drop(store);
    let _ = std::fs::remove_file(img);
    let _ = std::fs::remove_file(root);
    let _ = std::fs::remove_dir(dir);
    Ok(report)
}

/// How one injected crash point resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashVerdict {
    /// Recovered a committed generation whose data matched the model.
    Recovered {
        /// The committed generation the reopen landed on.
        generation: u64,
        /// Orphaned (newer-generation) journal frames discarded.
        orphaned: u64,
    },
    /// Reopen failed or the data region was a torn mixture.
    Torn(String),
}

/// What the crash-point matrix measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckMatrixReport {
    /// Crash points exercised.
    pub points: u64,
    /// Points that recovered the pre-crash committed state.
    pub recovered_old: u64,
    /// Points that recovered the newly committed state.
    pub recovered_new: u64,
    /// Points whose recovery discarded orphaned journal frames.
    pub orphaned_points: u64,
    /// Torn or unrecoverable points (must be empty), capped at 8
    /// messages.
    pub torn: Vec<String>,
}

impl FsckMatrixReport {
    /// Every crash point recovered a committed state.
    pub fn clean(&self) -> bool {
        self.torn.is_empty() && self.recovered_old > 0 && self.recovered_new > 0
    }
}

/// The fsck script's write count per phase: small and fixed so the
/// matrix (one full run per device step) stays CI-sized.
const FSCK_WRITES_PER_PHASE: u64 = 24;

fn fsck_config(spec: &StoreSpec) -> StoreConfig {
    StoreConfig {
        data_bytes: spec.data_bytes.min(8 << 10),
        page_bytes: spec.page_sizes[0],
        cache_pages: spec.cache_sizes[0].max(12),
        journal_slots: 0,
    }
}

fn fsck_phase_writes(config: &StoreConfig, phase: u32) -> Vec<(u64, Vec<u8>)> {
    let (stride, len, tint) = match phase {
        1 => (211u64, 32usize, 0x11u8),
        _ => (389, 48, 0xA0),
    };
    (0..FSCK_WRITES_PER_PHASE)
        .map(|i| {
            let addr = (i * stride) % (config.data_bytes - len as u64);
            (
                addr,
                vec![tint ^ u8::try_from(i).expect("writes per fsck phase stay below 256"); len],
            )
        })
        .collect()
}

/// Runs the scripted two-commit workload; any device error aborts it,
/// exactly as a crash would. Returns the step counts at each commit.
fn fsck_script(
    medium: CrashMedium<MemMedium>,
    roots: MemRootStore,
    config: &StoreConfig,
    hash: HashAlgo,
) -> Result<(u64, u64), StoreError> {
    let mut store = BlockStore::create(medium, roots, *config, hash.hasher())?;
    for (addr, data) in fsck_phase_writes(config, 1) {
        store.write(addr, &data)?;
    }
    store.commit()?;
    let steps_old = store.medium().steps();
    for (addr, data) in fsck_phase_writes(config, 2) {
        store.write(addr, &data)?;
    }
    store.commit()?;
    Ok((steps_old, store.medium().steps()))
}

fn fsck_model(config: &StoreConfig, generation: u64) -> Vec<u8> {
    let mut data = vec![0u8; config.data_bytes as usize];
    for phase in 1..=2u32 {
        if generation > phase as u64 {
            for (addr, bytes) in fsck_phase_writes(config, phase) {
                data[addr as usize..addr as usize + bytes.len()].copy_from_slice(&bytes);
            }
        }
    }
    data
}

fn run_crash_point(fail_at: u64, config: &StoreConfig, hash: HashAlgo) -> CrashVerdict {
    let mem = MemMedium::new();
    let roots = MemRootStore::new();
    let outcome = fsck_script(
        CrashMedium::new(mem.clone()).arm(fail_at),
        roots.clone(),
        config,
        hash,
    );
    if !matches!(outcome, Err(StoreError::Crashed)) {
        return CrashVerdict::Torn(format!(
            "step {fail_at}: armed crash did not fire ({outcome:?})"
        ));
    }
    let (mut store, recovery) =
        match BlockStore::open(mem, roots, hash.hasher(), config.cache_pages) {
            Ok(opened) => opened,
            Err(e) => return CrashVerdict::Torn(format!("step {fail_at}: reopen failed: {e}")),
        };
    if let Err(e) = store.verify_all() {
        return CrashVerdict::Torn(format!("step {fail_at}: verify failed: {e}"));
    }
    let data = match store.read_vec(0, config.data_bytes as usize) {
        Ok(data) => data,
        Err(e) => return CrashVerdict::Torn(format!("step {fail_at}: readback failed: {e}")),
    };
    if data != fsck_model(config, recovery.generation) {
        return CrashVerdict::Torn(format!(
            "step {fail_at}: generation {} data is a torn mixture",
            recovery.generation
        ));
    }
    CrashVerdict::Recovered {
        generation: recovery.generation,
        orphaned: recovery.orphaned_entries,
    }
}

/// Runs the crash-point matrix on `runner`'s worker pool: one
/// independent crash-and-recover task per mutating device step of the
/// scripted workload. Purely in-memory (`CrashMedium<MemMedium>`).
pub fn run_fsck(spec: &StoreSpec, runner: &SweepRunner) -> Result<FsckMatrixReport, String> {
    let config = fsck_config(spec);
    // Unarmed probe: measure the script's device steps.
    let (steps_old, steps_new) = fsck_script(
        CrashMedium::new(MemMedium::new()),
        MemRootStore::new(),
        &config,
        spec.hash,
    )
    .map_err(|e| format!("fsck probe: {e}"))?;
    if steps_old < 3 || steps_new <= steps_old {
        return Err(format!(
            "fsck probe produced a degenerate script ({steps_old}/{steps_new} steps)"
        ));
    }
    // Step 1 is create's image write: crashing there leaves no
    // committed root, so the matrix starts after create published
    // generation 1.
    let points: Vec<u64> = (3..=steps_new).collect();
    let verdicts = runner.run_tasks(&points, |&fail_at| {
        run_crash_point(fail_at, &config, spec.hash)
    });
    let mut report = FsckMatrixReport {
        points: points.len() as u64,
        recovered_old: 0,
        recovered_new: 0,
        orphaned_points: 0,
        torn: Vec::new(),
    };
    for verdict in verdicts {
        match verdict {
            CrashVerdict::Recovered {
                generation,
                orphaned,
            } => {
                if generation >= 3 {
                    report.recovered_new += 1;
                } else {
                    report.recovered_old += 1;
                }
                if orphaned > 0 {
                    report.orphaned_points += 1;
                }
            }
            CrashVerdict::Torn(msg) => {
                if report.torn.len() < 8 {
                    report.torn.push(msg);
                }
            }
        }
    }
    Ok(report)
}

fn spec_json(spec: &StoreSpec) -> JsonValue {
    let mut config = JsonValue::obj();
    config.push("data_bytes", spec.data_bytes);
    config.push(
        "page_sizes",
        spec.page_sizes
            .iter()
            .map(|&p| JsonValue::from(p))
            .collect::<Vec<_>>(),
    );
    config.push(
        "cache_sizes",
        spec.cache_sizes
            .iter()
            .map(|&c| JsonValue::from(c))
            .collect::<Vec<_>>(),
    );
    config.push("ops", spec.ops);
    config.push("write_pct", spec.write_pct);
    config.push("commit_every", spec.commit_every);
    config.push("soak_rounds", spec.soak_rounds);
    config.push("hash", spec.hash.label());
    config
}

fn document_header(spec: &StoreSpec, mode: &str) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("schema", "miv-store-v1");
    doc.push("mode", mode);
    doc.push("seed", spec.seed);
    doc.push("config", spec_json(spec));
    doc
}

/// Records the bench outcomes into `registry` as `store.*` counters
/// and per-cell hit-rate gauges.
pub fn record_bench(outcomes: &[BenchOutcome], registry: &Registry) {
    for o in outcomes {
        registry
            .counter("store.device.reads")
            .add(o.stats.device_reads);
        registry
            .counter("store.device.writes")
            .add(o.stats.device_writes);
        registry.counter("store.bytes.read").add(o.stats.read_bytes);
        registry
            .counter("store.bytes.written")
            .add(o.stats.write_bytes);
        registry.counter("store.cache.hits").add(o.stats.cache_hits);
        registry
            .counter("store.cache.misses")
            .add(o.stats.cache_misses);
        registry
            .counter("store.pages.hashed")
            .add(o.stats.pages_hashed);
        registry
            .counter("store.pages.verified")
            .add(o.stats.pages_verified);
        registry
            .counter("store.journal.appends")
            .add(o.stats.journal_appends);
        registry.counter("store.commits").add(o.stats.commits);
        registry
            .gauge(&format!(
                "store.hit_rate.p{}.c{}",
                o.cell.page_bytes, o.cell.cache_pages
            ))
            .set(o.hit_rate());
    }
}

/// The `miv-store-v1` bench document: the grid, per-cell counters and
/// latency quantiles, and the registry-backed metrics export.
pub fn store_bench_document(spec: &StoreSpec, outcomes: &[BenchOutcome]) -> JsonValue {
    let mut doc = document_header(spec, "bench");
    let mut merged = HistogramSnapshot::default();
    let mut cells = Vec::new();
    for o in outcomes {
        let mut cell = JsonValue::obj();
        cell.push("page_bytes", o.cell.page_bytes);
        cell.push("cache_pages", o.cell.cache_pages);
        cell.push("generation", o.generation);
        cell.push("verified_pages", o.verified_pages);
        cell.push("hit_rate", o.hit_rate());
        cell.push("device_reads", o.stats.device_reads);
        cell.push("device_writes", o.stats.device_writes);
        cell.push("read_bytes", o.stats.read_bytes);
        cell.push("write_bytes", o.stats.write_bytes);
        cell.push("syncs", o.stats.syncs);
        cell.push("journal_appends", o.stats.journal_appends);
        cell.push("commits", o.stats.commits);
        cell.push("auto_commits", o.stats.auto_commits);
        cell.push("latency_ticks", o.latency.to_json());
        cells.push(cell);
        merged.merge(&o.latency);
    }
    doc.push("cells", cells);
    let mut summary = JsonValue::obj();
    summary.push("cells", outcomes.len());
    summary.push("latency_ticks", merged.to_json());
    doc.push("summary", summary);
    let telemetry = Telemetry::new();
    record_bench(outcomes, telemetry.registry());
    doc.push("metrics", telemetry.aggregate_document());
    doc
}

/// The `miv-store-v1` soak document.
pub fn store_soak_document(spec: &StoreSpec, report: &SoakReport) -> JsonValue {
    let mut doc = document_header(spec, "soak");
    let mut body = JsonValue::obj();
    body.push("rounds", report.rounds);
    body.push("ops_per_round", report.ops);
    body.push("generation", report.generation);
    body.push("replayed_entries", report.replayed_entries);
    body.push("verified_pages", report.verified_pages);
    body.push("mismatches", report.mismatches);
    body.push("clean", report.clean());
    doc.push("soak", body);
    doc
}

/// The `miv-store-v1` fsck document.
pub fn store_fsck_document(spec: &StoreSpec, report: &FsckMatrixReport) -> JsonValue {
    let mut doc = document_header(spec, "fsck");
    let mut body = JsonValue::obj();
    body.push("crash_points", report.points);
    body.push("recovered_old", report.recovered_old);
    body.push("recovered_new", report.recovered_new);
    body.push("orphaned_points", report.orphaned_points);
    body.push(
        "torn",
        report
            .torn
            .iter()
            .map(|m| JsonValue::from(m.as_str()))
            .collect::<Vec<_>>(),
    );
    body.push("clean", report.clean());
    doc.push("fsck", body);
    doc
}

/// Renders the bench grid as a text table plus a one-line summary.
pub fn render_store_bench(spec: &StoreSpec, outcomes: &[BenchOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "store bench: seed {}, {} B data, {} ops/cell ({}% writes), commit every {}\n\n",
        spec.seed, spec.data_bytes, spec.ops, spec.write_pct, spec.commit_every
    ));
    let mut table = Table::new(vec![
        "page".into(),
        "cache".into(),
        "hit rate".into(),
        "dev reads".into(),
        "dev writes".into(),
        "commits".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
        "mean".into(),
    ]);
    for o in outcomes {
        table.row(vec![
            o.cell.page_bytes.to_string(),
            o.cell.cache_pages.to_string(),
            pct(o.hit_rate()),
            o.stats.device_reads.to_string(),
            o.stats.device_writes.to_string(),
            o.stats.commits.to_string(),
            (o.latency.quantile(0.50) as u64).to_string(),
            (o.latency.quantile(0.90) as u64).to_string(),
            (o.latency.quantile(0.99) as u64).to_string(),
            f2(o.latency.mean()),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nbench summary: {} cells, every cell fully verified after its stream\n",
        outcomes.len()
    ));
    out
}

/// Renders the soak treadmill report.
pub fn render_soak(spec: &StoreSpec, report: &SoakReport) -> String {
    format!(
        "store soak: seed {}, {} rounds × {} ops, page {} B, cache {} pages\n\
         final generation {}, {} frames replayed, {} pages verified, {} mismatches — {}\n",
        spec.seed,
        report.rounds,
        report.ops,
        spec.page_sizes[0],
        spec.cache_sizes[0],
        report.generation,
        report.replayed_entries,
        report.verified_pages,
        report.mismatches,
        if report.clean() {
            "CLEAN"
        } else {
            "STORE HOLE"
        }
    )
}

/// Renders the crash-point matrix report.
pub fn render_fsck(spec: &StoreSpec, report: &FsckMatrixReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "store fsck: seed {}, crash matrix over a two-commit script ({} B data, {} B pages)\n",
        spec.seed,
        fsck_config(spec).data_bytes,
        spec.page_sizes[0]
    ));
    out.push_str(&format!(
        "{} crash points: {} recovered old state, {} recovered new state, {} discarded orphans, {} torn — {}\n",
        report.points,
        report.recovered_old,
        report.recovered_new,
        report.orphaned_points,
        report.torn.len(),
        if report.clean() { "CLEAN" } else { "TORN STATE" }
    ));
    for msg in &report.torn {
        out.push_str(&format!("  torn: {msg}\n"));
    }
    out
}

/// The default scratch directory for file-backed modes: under the OS
/// temp dir, namespaced by process id so concurrent runs never collide.
/// Never printed into reports — outputs must not depend on it.
pub fn default_store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("miv-store-{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_spec(tag: &str) -> (StoreSpec, PathBuf) {
        let mut spec = StoreSpec::quick(7);
        spec.ops = 60;
        spec.soak_rounds = 2;
        let dir = default_store_dir().join(tag);
        (spec, dir)
    }

    #[test]
    fn bench_document_identical_at_any_worker_count() {
        let (spec, dir) = test_spec("bench-det");
        let base = run_store_bench(&spec, &SweepRunner::new(1), &dir).unwrap();
        let base_json = store_bench_document(&spec, &base).render_pretty();
        let base_text = render_store_bench(&spec, &base);
        for jobs in [2, 4] {
            let outcomes = run_store_bench(&spec, &SweepRunner::new(jobs), &dir).unwrap();
            assert_eq!(
                store_bench_document(&spec, &outcomes).render_pretty(),
                base_json
            );
            assert_eq!(render_store_bench(&spec, &outcomes), base_text);
        }
        assert!(base_json.contains("\"schema\": \"miv-store-v1\""));
        assert!(base_json.contains("store.cache.hits"));
        assert!(
            !base_json.contains("miv-store-7"),
            "no host paths in the document"
        );
    }

    #[test]
    fn soak_round_trips_cleanly() {
        let (spec, dir) = test_spec("soak");
        let report = run_soak(&spec, &dir).unwrap();
        assert!(report.clean(), "{report:?}");
        // Create publishes generation 1 and every round commits at
        // least once more (journal pressure may add auto-commits).
        assert!(report.generation > report.rounds as u64);
        // Reopens redo the committed journal prefix idempotently.
        assert!(report.replayed_entries > 0);
        let text = render_soak(&spec, &report);
        assert!(text.contains("CLEAN"));
        assert!(store_soak_document(&spec, &report)
            .render_pretty()
            .contains("\"mode\": \"soak\""));
    }

    #[test]
    fn validate_accepts_quick_and_rejects_degenerate_cache() {
        assert!(StoreSpec::quick(7).validate().is_ok());
        let mut spec = StoreSpec::quick(7);
        spec.cache_sizes = vec![1];
        let err = spec.validate().unwrap_err();
        assert!(err.starts_with("bench"), "{err}");
    }

    #[test]
    fn sha256_store_round_trips() {
        let (mut spec, dir) = test_spec("sha256");
        spec.hash = HashAlgo::Sha256;
        spec.page_sizes = vec![128];
        spec.cache_sizes = vec![8];
        let outcomes = run_store_bench(&spec, &SweepRunner::new(2), &dir).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].verified_pages > 0);
        let json = store_bench_document(&spec, &outcomes).render_pretty();
        assert!(json.contains("\"hash\": \"sha256\""));
    }

    #[test]
    fn fsck_matrix_recovers_both_sides_and_never_tears() {
        let (spec, _) = test_spec("fsck");
        let report = run_fsck(&spec, &SweepRunner::new(4)).unwrap();
        assert!(report.clean(), "{report:?}");
        assert!(report.orphaned_points > 0, "some crash must orphan frames");
        let report_seq = run_fsck(&spec, &SweepRunner::new(1)).unwrap();
        assert_eq!(report, report_seq, "matrix is order-independent");
        assert!(render_fsck(&spec, &report).contains("CLEAN"));
    }
}
