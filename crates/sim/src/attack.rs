//! Adversary campaigns on the sweep engine: fan the scheme × attack ×
//! trial grid of a [`CampaignSpec`] out over [`SweepRunner`] workers,
//! fold the outcomes into a [`CampaignReport`], and render it as the
//! `figures`-style text report or the `miv-attack-v1` JSON document.
//!
//! Cells are plain data and independent, so they ride the same
//! atomic-index worker pool as the performance sweeps
//! ([`SweepRunner::run_tasks`]); the report folds outcomes by grid
//! position rather than completion order, which makes `mivsim attack`
//! byte-identical at any `--jobs` count.

use miv_adversary::{
    run_cell, run_offline_cell, AttackClass, CampaignReport, CampaignSpec, CellOutcome, MatrixCell,
    OfflineReport, OfflineSpec,
};
use miv_obs::{EventTrace, JsonValue};

use crate::report::{f2, Table};
use crate::sweep::SweepRunner;
use crate::telemetry::Telemetry;

/// Runs every cell of `spec` on `runner`'s worker pool and returns the
/// outcomes (grid order) along with their folded report.
pub fn run_campaign(
    spec: &CampaignSpec,
    runner: &SweepRunner,
) -> (Vec<CellOutcome>, CampaignReport) {
    let cells = spec.cells();
    let outcomes = runner.run_tasks(&cells, run_cell);
    let report = CampaignReport::from_outcomes(spec, &outcomes);
    (outcomes, report)
}

/// Runs the offline-tamper campaign (powered-off mutations of the
/// persistent block store) on `runner`'s worker pool.
pub fn run_offline_campaign(spec: &OfflineSpec, runner: &SweepRunner) -> OfflineReport {
    let cells = spec.cells();
    let outcomes = runner.run_tasks(&cells, run_offline_cell);
    OfflineReport::from_outcomes(spec, &outcomes)
}

/// The complete `miv-attack-v1` JSON document: the online campaign
/// report, the offline-tamper section, and the registry-backed metrics
/// export (`attack.*` counters and per-scheme latency histograms).
pub fn attack_document(
    spec: &CampaignSpec,
    report: &CampaignReport,
    offline_spec: &OfflineSpec,
    offline: &OfflineReport,
) -> JsonValue {
    let telemetry = Telemetry::new();
    report.record_into(telemetry.registry());
    offline.record_into(telemetry.registry());
    let mut doc = report.to_json(spec);
    doc.push("offline", offline.to_json(offline_spec));
    doc.push("metrics", telemetry.aggregate_document());
    doc
}

/// Merges the per-cell event-trace snapshots (grid order) into one
/// bounded trace and returns it as JSONL — the `--trace-events` export.
pub fn attack_events_jsonl(outcomes: &[CellOutcome]) -> String {
    let trace = EventTrace::bounded(65_536);
    for outcome in outcomes {
        if let Some(snapshot) = &outcome.events {
            trace.absorb(snapshot);
        }
    }
    trace.to_jsonl()
}

fn matrix_cell_text(cell: &MatrixCell) -> String {
    if !cell.applicable {
        return "-".into();
    }
    if cell.false_alarms > 0 {
        return format!("FALSE({})", cell.false_alarms);
    }
    if cell.attack == AttackClass::Control {
        return "quiet".into();
    }
    if cell.expected_detected {
        if cell.missed > 0 {
            format!("MISS {}/{}", cell.detected, cell.trials)
        } else {
            format!("{}/{}", cell.detected, cell.trials)
        }
    } else if cell.detected > 0 {
        // `base` detecting anything would be a simulator bug.
        format!("?{}/{}", cell.detected, cell.trials)
    } else {
        "blind".into()
    }
}

/// Renders the campaign as the text report: the detection-coverage
/// matrix, the detector breakdown, per-scheme latency percentiles and a
/// one-line verdict. Pure function of the report, so the output is
/// identical at any worker count.
pub fn render_report(spec: &CampaignSpec, report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "adversary campaign: seed {}, {} trials/cell, {} accesses/cell, {} cells run\n\n",
        spec.seed, spec.trials, spec.accesses, report.cells
    ));

    out.push_str("detection coverage (detected/trials per scheme × attack):\n");
    let mut header = vec!["attack".to_string()];
    header.extend(spec.schemes.iter().map(|s| s.label().to_string()));
    let mut matrix = Table::new(header);
    for &attack in &AttackClass::ALL {
        let mut row = vec![attack.label().to_string()];
        for &scheme in &spec.schemes {
            let cell = report
                .matrix
                .iter()
                .find(|c| c.scheme == scheme && c.attack == attack)
                .expect("matrix covers the full grid");
            row.push(matrix_cell_text(cell));
        }
        matrix.row(row);
    }
    out.push_str(&matrix.render());

    out.push_str("\ndetections by detector:\n");
    let mut detectors = Table::new(vec![
        "scheme".into(),
        "timing".into(),
        "functional".into(),
        "audit".into(),
    ]);
    for &scheme in &spec.schemes {
        let (mut t, mut f, mut a) = (0u32, 0u32, 0u32);
        for cell in report.matrix.iter().filter(|c| c.scheme == scheme) {
            t += cell.by_timing;
            f += cell.by_functional;
            a += cell.by_audit;
        }
        if t + f + a > 0 {
            detectors.row(vec![
                scheme.label().into(),
                t.to_string(),
                f.to_string(),
                a.to_string(),
            ]);
        }
    }
    out.push_str(&detectors.render());

    out.push_str("\ndetection latency (cycles from injection to failed check):\n");
    let mut latency = Table::new(vec![
        "scheme".into(),
        "detections".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
        "max".into(),
        "mean".into(),
    ]);
    for stats in &report.latency {
        latency.row(vec![
            stats.scheme.label().into(),
            stats.detections.to_string(),
            stats.p50.to_string(),
            stats.p90.to_string(),
            stats.p99.to_string(),
            stats.max.to_string(),
            f2(stats.mean),
        ]);
    }
    out.push_str(&latency.render());

    out.push_str(&format!(
        "\nsummary: {} injections detected, {} expected detections missed, {} false alarms — {}\n",
        report.detected,
        report.missed_expected,
        report.false_alarms,
        if report.clean() {
            "CLEAN"
        } else {
            "CHECKER HOLE"
        }
    ));
    out
}

/// Renders the offline-tamper campaign as a text report: one row per
/// attack with its detection count and phase breakdown, plus a verdict.
pub fn render_offline_report(spec: &OfflineSpec, report: &OfflineReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "offline-tamper campaign: seed {}, {} trials/attack, {} B store, {} B pages\n\n",
        spec.seed, spec.trials, spec.data_bytes, spec.page_bytes
    ));
    let mut table = Table::new(vec![
        "attack".into(),
        "trials".into(),
        "detected".into(),
        "at-open".into(),
        "at-verify".into(),
        "verdict".into(),
    ]);
    for cell in &report.matrix {
        table.row(vec![
            cell.attack.label().into(),
            cell.trials.to_string(),
            cell.detected.to_string(),
            cell.by_open.to_string(),
            cell.by_verify.to_string(),
            cell.verdict().into(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\noffline summary: {} tampered images rejected, {} missed, {} false alarms — {}\n",
        report.detected,
        report.missed_expected,
        report.false_alarms,
        if report.clean() {
            "CLEAN"
        } else {
            "STORE HOLE"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_core::Scheme;

    fn small_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::quick(7);
        spec.trials = 1;
        spec.schemes = vec![Scheme::Base, Scheme::CHash, Scheme::IHash];
        spec.accesses = 800;
        spec.data_bytes = 128 << 10;
        spec.l2_bytes = 16 << 10;
        spec.working_set = 64 << 10;
        spec
    }

    fn small_offline_spec() -> OfflineSpec {
        OfflineSpec {
            trials: 1,
            ops: 80,
            ..OfflineSpec::quick(7)
        }
    }

    #[test]
    fn report_identical_at_any_worker_count() {
        let spec = small_spec();
        let off_spec = small_offline_spec();
        let (_, base_report) = run_campaign(&spec, &SweepRunner::new(1));
        let base_offline = run_offline_campaign(&off_spec, &SweepRunner::new(1));
        let base_text = render_report(&spec, &base_report);
        let base_off_text = render_offline_report(&off_spec, &base_offline);
        let base_json =
            attack_document(&spec, &base_report, &off_spec, &base_offline).render_pretty();
        for jobs in [2, 4] {
            let (_, report) = run_campaign(&spec, &SweepRunner::new(jobs));
            let offline = run_offline_campaign(&off_spec, &SweepRunner::new(jobs));
            assert_eq!(render_report(&spec, &report), base_text);
            assert_eq!(render_offline_report(&off_spec, &offline), base_off_text);
            assert_eq!(
                attack_document(&spec, &report, &off_spec, &offline).render_pretty(),
                base_json
            );
        }
    }

    #[test]
    fn offline_campaign_is_clean_and_fully_detected() {
        let spec = small_offline_spec();
        let report = run_offline_campaign(&spec, &SweepRunner::new(2));
        assert!(report.clean(), "{report:?}");
        let text = render_offline_report(&spec, &report);
        assert!(text.contains("stale-splice"));
        assert!(text.contains("CLEAN"));
    }

    #[test]
    fn verifying_schemes_come_out_clean() {
        let spec = small_spec();
        let (outcomes, report) = run_campaign(&spec, &SweepRunner::new(2));
        assert!(report.clean(), "missed or false-alarmed: {report:?}");
        assert!(report.detected > 0);
        // `base` misses everything it's subjected to; that is the
        // baseline, not a hole.
        let base_misses: u32 = report
            .matrix
            .iter()
            .filter(|c| c.scheme == Scheme::Base)
            .map(|c| c.missed)
            .sum();
        assert!(base_misses > 0);
        assert_eq!(outcomes.len(), spec.cells().len());
        let text = render_report(&spec, &report);
        assert!(text.contains("CLEAN"));
        assert!(text.contains("blind"), "base rows render as blind");
    }

    #[test]
    fn event_capture_flows_into_jsonl() {
        let mut spec = small_spec();
        spec.schemes = vec![Scheme::CHash];
        spec.capture_events = true;
        let (outcomes, _) = run_campaign(&spec, &SweepRunner::new(2));
        let jsonl = attack_events_jsonl(&outcomes);
        assert!(!jsonl.is_empty());
        assert!(jsonl.contains("integrity_violation"));
    }

    #[test]
    fn json_document_embeds_registry_metrics_and_offline_section() {
        let spec = small_spec();
        let off_spec = small_offline_spec();
        let (_, report) = run_campaign(&spec, &SweepRunner::new(2));
        let offline = run_offline_campaign(&off_spec, &SweepRunner::new(2));
        let doc = attack_document(&spec, &report, &off_spec, &offline);
        let text = doc.render_pretty();
        assert!(text.contains("\"schema\": \"miv-attack-v1\""));
        assert!(text.contains("attack.latency.chash"));
        assert!(text.contains("attack.offline.detected"));
        let metrics = doc.get("metrics").expect("embedded metrics");
        assert!(metrics.get("counters").is_some());
        let offline_doc = doc.get("offline").expect("offline section");
        assert!(offline_doc.get("matrix").is_some());
    }
}
