//! Sharded multi-tenant integrity serving: N independent engine shards
//! on a worker pool behind a deterministic request scheduler.
//!
//! The paper's checker verifies one address space for one caller; this
//! module is the request-serving layer over it, in the spirit of
//! scalable cloud-disk integrity services. A [`ServeSpec`] describes a
//! fleet of tenants; [`ServeSpec::shards`] — the scheduler — expands it
//! into one plain-data [`ShardSpec`] per tenant, each carrying a
//! splitmix-derived seed so the per-tenant request streams are
//! unrelated but fully determined by the master seed. The worker pool
//! (the generic [`SweepRunner::run_tasks`] engine) fans the shard tasks
//! out; outcomes land in tenant order, so the report and the
//! `miv-serve-v1` JSON are byte-identical at any `--jobs` count.
//!
//! # The `Send` boundary
//!
//! Engine state is deliberately `Rc`-cheap and non-`Send`: a built
//! shard (a [`VerifiedMemory`] + [`L2Controller`] pair with attached
//! miv-obs recorders) can never cross a thread. The serving layer
//! extends the parallel-sweep pattern to whole engines: shards are
//! **constructed on their worker** from the plain-data [`ShardSpec`],
//! record into a private per-shard [`Telemetry`], and only plain
//! [`TelemetrySnapshot`] data crosses back inside the [`ShardOutcome`].
//! A compile-time `assert_send` check at the bottom of this module pins
//! the boundary; the `rc-not-sent` analyze rule enforces that no `Rc`
//! type ever appears in this file's task signatures.
//!
//! # Integrity probes
//!
//! A multi-tenant service must prove per-tenant isolation of
//! *detection*, not just of data: by default every shard ends its
//! stream with a tamper probe (quiesce, flip one bit of the tenant's
//! physical memory behind the engine's back, re-read) and reports
//! whether and how fast the corruption was caught. Probing or tampering
//! one tenant cannot perturb another tenant's output — streams share
//! nothing but the spec — which `serve_determinism` tests pin down.
//!
//! # Examples
//!
//! ```
//! use miv_sim::serve::{render_serve, run_serve, ServeSpec};
//! use miv_sim::SweepRunner;
//!
//! let mut spec = ServeSpec::quick(42);
//! spec.requests = 200; // doctest-sized
//! let outcomes = run_serve(&spec, &SweepRunner::new(2)).unwrap();
//! assert_eq!(outcomes.len(), spec.shards as usize);
//! assert!(outcomes.iter().all(|o| o.probe.is_some()));
//! let report = render_serve(&spec, &outcomes);
//! assert!(report.contains("tenant-0"));
//! ```

use miv_cache::CacheConfig;
use miv_core::engine::{MemoryBuilder, Protection, VerifiedMemory};
use miv_core::timing::{CheckerConfig, L2Controller};
use miv_core::{ConfigError, Scheme, TamperKind};
use miv_hash::HashAlgo;
use miv_mem::MemoryBusConfig;
use miv_obs::{HistogramSnapshot, JsonValue, Rng};

use crate::report::{f2, Table};
use crate::sweep::SweepRunner;
use crate::telemetry::{Telemetry, TelemetrySnapshot};

/// The modelled core clock: one cycle is one nanosecond, matching the
/// bandwidth accounting used across the workspace (`bandwidth_gbps` =
/// bytes/cycle). Throughput figures are *simulated* ops/sec at this
/// clock — a pure function of the spec, never of the host — so serve
/// reports stay byte-identical at any worker count.
pub const CORE_CLOCK_HZ: u64 = 1_000_000_000;

/// Request classes a tenant stream mixes, in report order.
pub const REQUEST_CLASSES: [&str; 3] = ["read", "write", "flush"];

/// Which tenants end their stream with a tamper probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperPolicy {
    /// Every tenant gets a probe (the default; the CI gate requires
    /// every probe detected).
    EveryTenant,
    /// Only this tenant index is probed — the isolation experiment: all
    /// other tenants' outputs must be byte-identical to [`Off`].
    ///
    /// [`Off`]: TamperPolicy::Off
    Tenant(u32),
    /// No probes.
    Off,
}

impl TamperPolicy {
    fn probes(&self, tenant: u32) -> bool {
        match self {
            TamperPolicy::EveryTenant => true,
            TamperPolicy::Tenant(t) => *t == tenant,
            TamperPolicy::Off => false,
        }
    }
}

/// Everything the serving layer needs: plain data, fully determining
/// the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSpec {
    /// Master seed; every shard derives its own streams from it.
    pub seed: u64,
    /// Tenant (shard) count.
    pub shards: u32,
    /// Requests per tenant stream.
    pub requests: u64,
    /// Protected data segment per tenant, in bytes.
    pub data_bytes: u64,
    /// Per-shard L2 capacity in bytes (also sizes the functional
    /// trusted cache).
    pub l2_bytes: u64,
    /// L2 line / tree block size in bytes.
    pub line_bytes: u32,
    /// Span of each tenant's access stream in bytes (clamped to the
    /// data segment).
    pub working_set: u64,
    /// Store fraction of the stream, in percent.
    pub write_pct: u32,
    /// Flush fraction of the stream, in percent (a flush request drains
    /// both engine halves).
    pub flush_pct: u32,
    /// Which tenants get an end-of-stream tamper probe.
    pub tamper: TamperPolicy,
    /// Hash unit for every tenant's functional engine.
    pub hash: HashAlgo,
}

impl ServeSpec {
    /// A CI-sized service: 4 tenants, short streams, probes on.
    pub fn quick(seed: u64) -> Self {
        ServeSpec {
            seed,
            shards: 4,
            requests: 2_000,
            data_bytes: 128 << 10,
            l2_bytes: 32 << 10,
            line_bytes: 64,
            working_set: 96 << 10,
            write_pct: 30,
            flush_pct: 1,
            tamper: TamperPolicy::EveryTenant,
            hash: HashAlgo::Md5,
        }
    }

    /// The full service: 8 tenants, longer streams over a larger
    /// footprint.
    pub fn full(seed: u64) -> Self {
        ServeSpec {
            seed,
            shards: 8,
            requests: 20_000,
            data_bytes: 512 << 10,
            l2_bytes: 64 << 10,
            line_bytes: 64,
            working_set: 384 << 10,
            write_pct: 30,
            flush_pct: 1,
            tamper: TamperPolicy::EveryTenant,
            hash: HashAlgo::Md5,
        }
    }

    /// The request scheduler: expands the spec into one plain-data
    /// [`ShardSpec`] task per tenant, in tenant order. Tenants cycle
    /// through the verifying schemes (chash, mhash, ihash, naive) and
    /// each gets a splitmix-derived seed, so neighbouring tenants run
    /// unrelated streams while the whole fleet stays a pure function of
    /// the master seed.
    pub fn shards(&self) -> Vec<ShardSpec> {
        (0..self.shards)
            .map(|tenant| ShardSpec {
                tenant,
                scheme: SHARD_SCHEMES[tenant as usize % SHARD_SCHEMES.len()],
                seed: shard_seed(self.seed, tenant),
                data_bytes: self.data_bytes,
                l2_bytes: self.l2_bytes,
                line_bytes: self.line_bytes,
                working_set: self.working_set,
                requests: self.requests,
                write_pct: self.write_pct,
                flush_pct: self.flush_pct,
                tamper: self.tamper.probes(tenant),
                hash: self.hash,
            })
            .collect()
    }

    /// Validates every shard the scheduler would dispatch, without
    /// building any engine. This is the CLI's pre-flight: a bad
    /// geometry comes back as a [`ConfigError`] instead of a worker
    /// panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for shard in self.shards() {
            shard.validate()?;
        }
        Ok(())
    }
}

/// Schemes tenants cycle through (`base` verifies nothing, so it can
/// never serve an integrity tenant).
pub const SHARD_SCHEMES: [Scheme; 4] = [Scheme::CHash, Scheme::MHash, Scheme::IHash, Scheme::Naive];

/// Derives a well-mixed per-tenant seed from the master seed
/// (splitmix64-style finalizer, so neighbouring tenants get unrelated
/// streams).
pub fn shard_seed(seed: u64, tenant: u32) -> u64 {
    let mut z = seed
        .wrapping_add((tenant as u64) << 32)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shard task: everything a worker needs to build and drive one
/// tenant's engines. Plain data (`Send` — asserted at compile time
/// below), independent of every other shard, fully determining its
/// [`ShardOutcome`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Tenant index (labelled `tenant-N` in reports).
    pub tenant: u32,
    /// Verification scheme this tenant runs.
    pub scheme: Scheme,
    /// Seed for this tenant's request and probe streams.
    pub seed: u64,
    /// Protected data segment in bytes.
    pub data_bytes: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 line / tree block size in bytes.
    pub line_bytes: u32,
    /// Span of the access stream in bytes.
    pub working_set: u64,
    /// Requests in the stream.
    pub requests: u64,
    /// Store fraction, in percent.
    pub write_pct: u32,
    /// Flush fraction, in percent.
    pub flush_pct: u32,
    /// Whether the stream ends with a tamper probe.
    pub tamper: bool,
    /// Hash unit for the functional engine.
    pub hash: HashAlgo,
}

impl ShardSpec {
    /// The tenant's display label.
    pub fn label(&self) -> String {
        format!("tenant-{}", self.tenant)
    }

    /// Chunk size for the scheme: one block for `naive`/`chash`, two
    /// for the multi-block schemes (the `ProfileSpec` geometry
    /// subtlety, here routed through the fallible constructors).
    pub fn chunk_bytes(&self) -> u32 {
        match self.scheme {
            Scheme::MHash | Scheme::IHash => self.line_bytes * 2,
            Scheme::Base | Scheme::Naive | Scheme::CHash => self.line_bytes,
        }
    }

    fn checker_config(&self) -> CheckerConfig {
        let mut checker = CheckerConfig::hpca03(self.scheme);
        checker.protected_bytes = self.data_bytes;
        checker.chunk_bytes = self.chunk_bytes();
        checker
    }

    fn memory_builder(&self) -> MemoryBuilder {
        MemoryBuilder::new()
            .data_bytes(self.data_bytes)
            .chunk_bytes(self.chunk_bytes())
            .block_bytes(self.line_bytes)
            .protection(match self.scheme {
                Scheme::IHash => Protection::IncrementalMac,
                Scheme::Base | Scheme::Naive | Scheme::CHash | Scheme::MHash => {
                    Protection::HashTree
                }
            })
            .hasher(self.hash.hasher())
            .cache_blocks((self.l2_bytes / self.line_bytes as u64) as usize)
    }

    /// Checks that both engine halves can be built from this spec —
    /// through the fallible constructors, without allocating the data
    /// segment or building the tree.
    pub fn validate(&self) -> Result<(), ConfigError> {
        L2Controller::try_new(
            self.checker_config(),
            CacheConfig::l2(self.l2_bytes, self.line_bytes),
            MemoryBusConfig::default(),
        )?;
        self.memory_builder().validate()
    }
}

/// The end-of-stream tamper probe's verdict for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TamperProbe {
    /// Whether any detector caught the corruption.
    pub detected: bool,
    /// Which detector fired first (`timing`, `functional`, or `none`).
    pub detector: &'static str,
    /// Cycles from injection to detection (0 when undetected).
    pub latency: u64,
}

/// The measured result of one shard: plain data, crossing back from
/// the worker in the outcome slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Tenant index.
    pub tenant: u32,
    /// Scheme the tenant ran.
    pub scheme: Scheme,
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Flush requests served.
    pub flushes: u64,
    /// Simulated core cycles to serve and drain the stream (excludes
    /// the probe).
    pub cycles: u64,
    /// The shard's private telemetry recording: `serve.latency.*`
    /// histograms, engine/L2/bus counters. Absorbed in tenant order by
    /// the fold, which makes the merged document identical at any
    /// worker count.
    pub telemetry: TelemetrySnapshot,
    /// The tamper probe's verdict, when the spec requested one.
    pub probe: Option<TamperProbe>,
}

impl ShardOutcome {
    /// Total requests served.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes + self.flushes
    }

    /// Simulated throughput at [`CORE_CLOCK_HZ`], in ops/sec.
    pub fn ops_per_sec(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops() as f64 * CORE_CLOCK_HZ as f64 / self.cycles as f64
    }

    /// This shard's latency histogram for a request class, when the
    /// class occurred.
    pub fn latency(&self, class: &str) -> Option<&HistogramSnapshot> {
        self.telemetry
            .metrics
            .histograms
            .get(&format!("serve.latency.{class}"))
    }
}

/// Builds and drives one tenant's shard on the calling thread — in the
/// pool, that is the worker the shard lives and dies on. The engines
/// and their recorders never leave this stack frame; only the
/// plain-data outcome returns.
pub fn run_shard(spec: &ShardSpec) -> ShardOutcome {
    // Construction on the worker, through the fallible path: the
    // scheduler validated every spec before dispatch.
    let mut ctl = L2Controller::try_new(
        spec.checker_config(),
        CacheConfig::l2(spec.l2_bytes, spec.line_bytes),
        MemoryBusConfig::default(),
    )
    .expect("shard spec validated before dispatch");
    let mut init_rng = Rng::seed_from_u64(spec.seed ^ 0x007E_4A11);
    let mut init = vec![0u8; spec.data_bytes as usize];
    init_rng.fill_bytes(&mut init);
    let mut vm = VerifiedMemory::try_new(spec.memory_builder().initial_data(init))
        .expect("shard spec validated before dispatch");

    let telemetry = Telemetry::with_event_capacity(4096);
    ctl.attach_observability(telemetry.registry(), telemetry.events().sink());
    vm.attach_observability(telemetry.registry(), telemetry.events().sink());
    let lat_read = telemetry.registry().histogram("serve.latency.read");
    let lat_write = telemetry.registry().histogram("serve.latency.write");
    let lat_flush = telemetry.registry().histogram("serve.latency.flush");

    let line = spec.line_bytes as u64;
    let blocks = (spec.working_set.min(spec.data_bytes) / line).max(1);
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut buf = vec![0u8; spec.line_bytes as usize];
    let mut wbuf = vec![0u8; spec.line_bytes as usize - 16];

    let mut outcome = ShardOutcome {
        tenant: spec.tenant,
        scheme: spec.scheme,
        reads: 0,
        writes: 0,
        flushes: 0,
        cycles: 0,
        telemetry: TelemetrySnapshot::default(),
        probe: None,
    };

    let mut now: u64 = 0;
    for _ in 0..spec.requests {
        let roll = rng.gen_range_u64(0, 100);
        if roll < spec.flush_pct as u64 {
            // Flush: drain both halves — write-backs, background
            // verifications, the lot.
            let done = ctl.quiesce(now);
            lat_flush.record(done - now);
            now = done;
            vm.flush().expect("tamper-free stream verifies");
            outcome.flushes += 1;
            continue;
        }
        let write = roll < (spec.flush_pct + spec.write_pct) as u64;
        let addr = rng.gen_range_u64(0, blocks) * line;
        let ready = ctl.access(now, addr, write, false);
        if write {
            // Partial-line stores: the engine must fetch and check the
            // old block (a full-line store would silently heal tampered
            // memory via the §5.3 alloc-no-fetch path).
            rng.fill_bytes(&mut wbuf);
            vm.write(addr + 8, &wbuf)
                .expect("tamper-free stream verifies");
            lat_write.record(ready - now);
            outcome.writes += 1;
        } else {
            vm.read(addr, &mut buf)
                .expect("tamper-free stream verifies");
            lat_read.record(ready - now);
            outcome.reads += 1;
        }
        now = ready;
    }
    // Final drain so every booked transfer lands inside the measured
    // window; the probe runs after the clock stops.
    now = ctl.quiesce(now);
    outcome.cycles = now;

    if spec.tamper {
        outcome.probe = Some(run_probe(spec, &mut ctl, &mut vm, now, blocks));
    }

    outcome.telemetry = telemetry.snapshot();
    outcome
}

/// The per-tenant tamper probe: quiesce both halves, flip one bit of
/// this tenant's physical memory behind the engines' backs, then
/// re-read the block and report which detector caught it and how fast.
fn run_probe(
    spec: &ShardSpec,
    ctl: &mut L2Controller,
    vm: &mut VerifiedMemory,
    mut now: u64,
    blocks: u64,
) -> TamperProbe {
    let line = spec.line_bytes as u64;
    let mut rng = Rng::seed_from_u64(spec.seed ^ 0xA77A_C4ED);
    let target = rng.gen_range_u64(0, blocks) * line;

    // A tamper under a valid cached copy is invisible by construction:
    // drop every on-chip copy first so the flip lands on the image the
    // next fetch actually reads.
    vm.clear_cache().expect("pre-probe cache drop verifies");
    now = ctl.quiesce(now);
    let inject_cycle = now;

    let phys = vm.layout().data_phys_addr(target) + rng.gen_range_u64(0, line);
    let bit = rng.gen_u8() % 8;
    vm.adversary().tamper(phys, TamperKind::BitFlip { bit });
    ctl.inject_tamper(phys, 1);

    // Touch the corrupted block and drain so the background
    // verification completes.
    now = ctl.access(now, target, false, false);
    now = ctl.quiesce(now);

    // Timing-preferred merge (same stance as the adversary campaign):
    // the cycle-level checker knows when the failing check completes in
    // the modelled hardware; the functional engine stands in when the
    // taint machinery missed.
    let timing = ctl.first_detection().map(|d| TamperProbe {
        detected: true,
        detector: "timing",
        latency: d.cycle.saturating_sub(inject_cycle),
    });
    let mut buf = vec![0u8; spec.line_bytes as usize];
    let functional = vm.read(target, &mut buf).err().map(|_| TamperProbe {
        detected: true,
        detector: "functional",
        latency: now.saturating_sub(inject_cycle),
    });
    timing.or(functional).unwrap_or(TamperProbe {
        detected: false,
        detector: "none",
        latency: 0,
    })
}

/// Validates the whole fleet, fans the shard tasks over `runner`'s
/// worker pool, and returns the outcomes in tenant order —
/// byte-identical downstream output at any worker count.
pub fn run_serve(spec: &ServeSpec, runner: &SweepRunner) -> Result<Vec<ShardOutcome>, ConfigError> {
    let shards = spec.shards();
    for shard in &shards {
        shard.validate()?;
    }
    Ok(runner.run_tasks(&shards, run_shard))
}

/// Folds every shard's telemetry snapshot into one recorder, in tenant
/// order — the merged registry a sequential service sharing one
/// recorder would have produced.
pub fn fold_telemetry(outcomes: &[ShardOutcome]) -> Telemetry {
    let telemetry = Telemetry::new();
    for outcome in outcomes {
        telemetry.absorb(&outcome.telemetry);
    }
    telemetry
}

/// Aggregate service figures derived from a fleet's outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSummary {
    /// Total requests served across tenants.
    pub ops: u64,
    /// Service makespan in simulated cycles: the slowest shard's drain
    /// time (shards serve concurrently).
    pub makespan_cycles: u64,
    /// Aggregate simulated throughput at [`CORE_CLOCK_HZ`].
    pub ops_per_sec: f64,
    /// Tamper probes requested.
    pub probes: u64,
    /// Tamper probes detected.
    pub probes_detected: u64,
}

impl ServiceSummary {
    /// Derives the summary from the fleet's outcomes.
    pub fn from_outcomes(outcomes: &[ShardOutcome]) -> Self {
        let ops: u64 = outcomes.iter().map(ShardOutcome::ops).sum();
        let makespan = outcomes.iter().map(|o| o.cycles).max().unwrap_or(0);
        let probes = outcomes.iter().filter(|o| o.probe.is_some()).count() as u64;
        let detected = outcomes
            .iter()
            .filter(|o| o.probe.is_some_and(|p| p.detected))
            .count() as u64;
        ServiceSummary {
            ops,
            makespan_cycles: makespan,
            ops_per_sec: if makespan == 0 {
                0.0
            } else {
                ops as f64 * CORE_CLOCK_HZ as f64 / makespan as f64
            },
            probes,
            probes_detected: detected,
        }
    }

    /// Whether every requested probe was detected (the CI gate).
    pub fn clean(&self) -> bool {
        self.probes == self.probes_detected
    }
}

/// Renders the text report: the per-tenant table, the aggregate
/// throughput line, the merged per-class latency table, and the
/// integrity verdict.
pub fn render_serve(spec: &ServeSpec, outcomes: &[ShardOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "integrity service: {} shards × {} requests, seed {}, {} KiB/tenant (L2 {} KiB)\n\n",
        spec.shards,
        spec.requests,
        spec.seed,
        spec.data_bytes >> 10,
        spec.l2_bytes >> 10,
    ));

    let mut t = Table::new(vec![
        "tenant".into(),
        "scheme".into(),
        "reads".into(),
        "writes".into(),
        "flushes".into(),
        "cycles".into(),
        "Mops/s".into(),
        "probe".into(),
    ]);
    for o in outcomes {
        t.row(vec![
            format!("tenant-{}", o.tenant),
            o.scheme.label().into(),
            o.reads.to_string(),
            o.writes.to_string(),
            o.flushes.to_string(),
            o.cycles.to_string(),
            f2(o.ops_per_sec() / 1e6),
            match o.probe {
                Some(p) if p.detected => format!("{} @{}cy", p.detector, p.latency),
                Some(_) => "MISSED".into(),
                None => "-".into(),
            },
        ]);
    }
    out.push_str(&t.render());

    let summary = ServiceSummary::from_outcomes(outcomes);
    out.push_str(&format!(
        "\naggregate: {} ops in {} cycles makespan -> {} M ops/s at 1 GHz\n",
        summary.ops,
        summary.makespan_cycles,
        f2(summary.ops_per_sec / 1e6),
    ));

    out.push_str("\nrequest latency by class, all tenants (cycles):\n");
    let fold = fold_telemetry(outcomes);
    let merged = fold.registry().snapshot();
    let mut lt = Table::new(vec![
        "class".into(),
        "count".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
        "max".into(),
        "mean".into(),
    ]);
    for class in REQUEST_CLASSES {
        let Some(hist) = merged.histograms.get(&format!("serve.latency.{class}")) else {
            continue;
        };
        if hist.count == 0 {
            continue;
        }
        lt.row(vec![
            class.into(),
            hist.count.to_string(),
            format!("{:.0}", hist.quantile(0.50)),
            format!("{:.0}", hist.quantile(0.90)),
            format!("{:.0}", hist.quantile(0.99)),
            hist.max.to_string(),
            f2(hist.mean()),
        ]);
    }
    out.push_str(&lt.render());

    if summary.probes > 0 {
        out.push_str(&format!(
            "\nintegrity: {}/{} tenant probes detected{}\n",
            summary.probes_detected,
            summary.probes,
            if summary.clean() { "" } else { " — FAILED" },
        ));
    }
    out
}

/// The `miv-serve-v1` JSON document: spec echo, per-shard figures with
/// per-class latency quantiles, the aggregate summary, and the
/// integrity verdict. Byte-identical across runs and worker counts.
pub fn serve_document(spec: &ServeSpec, outcomes: &[ShardOutcome]) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("schema", "miv-serve-v1");
    doc.push("seed", spec.seed);
    doc.push("shards", spec.shards as u64);
    doc.push("requests_per_shard", spec.requests);
    doc.push("data_bytes", spec.data_bytes);
    doc.push("l2_bytes", spec.l2_bytes);
    doc.push("hash", spec.hash.label());
    doc.push("core_clock_hz", CORE_CLOCK_HZ);

    let shards: Vec<JsonValue> = outcomes
        .iter()
        .map(|o| {
            let mut s = JsonValue::obj();
            s.push("tenant", format!("tenant-{}", o.tenant));
            s.push("scheme", o.scheme.label());
            s.push("reads", o.reads);
            s.push("writes", o.writes);
            s.push("flushes", o.flushes);
            s.push("cycles", o.cycles);
            s.push("ops_per_sec", o.ops_per_sec());
            let mut latency = JsonValue::obj();
            for class in REQUEST_CLASSES {
                if let Some(hist) = o.latency(class) {
                    latency.push(class, hist.to_json());
                }
            }
            s.push("latency", latency);
            s.push(
                "probe",
                match o.probe {
                    Some(p) => {
                        let mut probe = JsonValue::obj();
                        probe.push("detected", p.detected);
                        probe.push("detector", p.detector);
                        probe.push("latency_cycles", p.latency);
                        probe
                    }
                    None => JsonValue::Null,
                },
            );
            s
        })
        .collect();
    doc.push("shards", shards);

    let summary = ServiceSummary::from_outcomes(outcomes);
    let mut agg = JsonValue::obj();
    agg.push("ops", summary.ops);
    agg.push("makespan_cycles", summary.makespan_cycles);
    agg.push("ops_per_sec", summary.ops_per_sec);
    doc.push("aggregate", agg);

    let mut integrity = JsonValue::obj();
    integrity.push("probes", summary.probes);
    integrity.push("detected", summary.probes_detected);
    integrity.push("clean", summary.clean());
    doc.push("integrity", integrity);
    doc
}

// Compile-time proof of the worker-pool boundary: shard tasks cross
// *into* workers as plain `Send + Sync` data and results cross *back*
// as plain `Send` data — never as live engines or recorder handles.
// If a non-`Send` handle (an `Rc`-based miv-obs recorder, an engine
// half) ever leaks into these types, this stops compiling.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<ShardSpec>();
    assert_sync::<ShardSpec>();
    assert_send::<ShardOutcome>();
    assert_send::<TamperProbe>();
    assert_send::<ServeSpec>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_expands_in_tenant_order_with_distinct_seeds() {
        let spec = ServeSpec::quick(42);
        let shards = spec.shards();
        assert_eq!(shards.len(), 4);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.tenant as usize, i);
            assert!(s.scheme.verifies());
        }
        let mut seeds: Vec<u64> = shards.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), shards.len(), "tenant seeds must be distinct");
        // Different master seeds give different fleets.
        assert_ne!(ServeSpec::quick(7).shards()[0].seed, shards[0].seed);
    }

    #[test]
    fn spec_validation_reports_geometry_errors() {
        let mut spec = ServeSpec::quick(42);
        spec.data_bytes = 0;
        assert_eq!(spec.validate(), Err(ConfigError::EmptySegment));
        let mut spec = ServeSpec::quick(42);
        spec.l2_bytes = 256; // trusted cache of 4 blocks cannot make progress
        assert!(matches!(
            spec.validate(),
            Err(ConfigError::CacheTooSmall { .. })
        ));
        assert!(ServeSpec::quick(42).validate().is_ok());
    }

    #[test]
    fn one_shard_serves_and_detects() {
        let mut spec = ServeSpec::quick(11);
        spec.shards = 1;
        spec.requests = 400;
        let outcomes = run_serve(&spec, &SweepRunner::new(1)).unwrap();
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert_eq!(o.ops(), spec.requests);
        assert!(o.cycles > 0);
        assert!(o.reads > 0 && o.writes > 0);
        let probe = o.probe.expect("probe requested");
        assert!(probe.detected, "bit flip must be caught");
        assert!(o.latency("read").is_some_and(|h| h.count == o.reads));
    }

    #[test]
    fn tamper_policy_scopes_probes() {
        assert!(TamperPolicy::EveryTenant.probes(3));
        assert!(TamperPolicy::Tenant(2).probes(2));
        assert!(!TamperPolicy::Tenant(2).probes(1));
        assert!(!TamperPolicy::Off.probes(0));
    }

    #[test]
    fn summary_aggregates_and_gates() {
        let mut spec = ServeSpec::quick(5);
        spec.shards = 2;
        spec.requests = 300;
        let outcomes = run_serve(&spec, &SweepRunner::new(2)).unwrap();
        let summary = ServiceSummary::from_outcomes(&outcomes);
        assert_eq!(summary.ops, 600);
        assert_eq!(
            summary.makespan_cycles,
            outcomes.iter().map(|o| o.cycles).max().unwrap()
        );
        assert_eq!(summary.probes, 2);
        assert!(summary.clean());
        let doc = serve_document(&spec, &outcomes).render_pretty();
        assert!(doc.contains("miv-serve-v1"));
        assert!(doc.contains("tenant-1"));
    }
}
