//! Regeneration of every table and figure in the paper's evaluation (§6).
//!
//! Each `figN` function sweeps the same parameters the paper swept and
//! renders the same rows/series. Absolute numbers differ — our substrate
//! is a synthetic trace model, not SimpleScalar running SPEC binaries —
//! but the comparisons the paper draws (who wins, by what factor, which
//! trends hold) are reproduced; `claims` checks the headline statements
//! explicitly. See `EXPERIMENTS.md` at the repository root for the
//! recorded paper-vs-measured comparison.

use std::cell::RefCell;

use miv_core::layout::{render_tree, TreeLayout};
use miv_core::timing::Scheme;
use miv_hash::Throughput;
use miv_obs::JsonValue;
use miv_trace::Benchmark;

use crate::config::SystemConfig;
use crate::report::{f2, f3, pct, Table};
use crate::system::{RunResult, System};
use crate::telemetry::Telemetry;

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Warm-up instructions per run (statistics discarded).
    pub warmup: u64,
    /// Measured instructions per run.
    pub measure: u64,
    /// Trace seed (same seed per benchmark across schemes, so scheme
    /// comparisons see identical instruction streams).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            warmup: 200_000,
            measure: 1_000_000,
            seed: 42,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            warmup: 10_000,
            measure: 60_000,
            seed: 42,
        }
    }
}

/// One rendered experiment artifact.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Artifact id (`table1`, `fig3`, …).
    pub id: String,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// Rendered text body.
    pub body: String,
}

impl Figure {
    fn new(id: &str, title: &str, body: String) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            body,
        }
    }
}

impl std::fmt::Display for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        f.write_str(&self.body)
    }
}

thread_local! {
    /// Telemetry attached to every system the harness builds while a
    /// [`with_telemetry`] scope is active.
    static ACTIVE_TELEMETRY: RefCell<Option<Telemetry>> = const { RefCell::new(None) };
}

/// Runs `f` with `telemetry` attached to every machine the experiment
/// harness builds inside it, aggregating metrics and events across all
/// runs of a sweep (counters sum; histograms merge; the event ring keeps
/// the tail). Used by the `figures` binary's `--metrics-out` /
/// `--trace-events` flags.
pub fn with_telemetry<T>(telemetry: &Telemetry, f: impl FnOnce() -> T) -> T {
    ACTIVE_TELEMETRY.with(|slot| *slot.borrow_mut() = Some(telemetry.clone()));
    let result = f();
    ACTIVE_TELEMETRY.with(|slot| *slot.borrow_mut() = None);
    result
}

fn run_one(cfg: SystemConfig, bench: Benchmark, xp: &ExperimentConfig) -> RunResult {
    let mut sys = System::for_benchmark(cfg, bench, xp.seed);
    ACTIVE_TELEMETRY.with(|slot| {
        if let Some(telemetry) = slot.borrow().as_ref() {
            sys.attach_telemetry(telemetry);
        }
    });
    sys.run(xp.warmup, xp.measure)
}

// ---------------------------------------------------------------------
// Table 1 and the two descriptive figures
// ---------------------------------------------------------------------

/// Table 1: architectural parameters used in simulations.
pub fn table1() -> Figure {
    let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64);
    Figure::new(
        "table1",
        "Architectural parameters used in simulations",
        cfg.table1(),
    )
}

/// Figure 1: the hash-tree layout (rendered for a small example, plus the
/// geometry of the Table 1 configuration).
pub fn fig1() -> Figure {
    let small = TreeLayout::new(16 * 64, 64, 64);
    let big = TreeLayout::new(256 << 20, 64, 64);
    let body = format!(
        "A small example (16 data chunks, 64-B chunks, 4-ary):\n\n{}\n\
         The Table 1 configuration:\n  {}\n  memory overhead: {}\n",
        render_tree(&small),
        big,
        pct(big.overhead()),
    );
    Figure::new("fig1", "A hash tree", body)
}

/// Figure 2: the checker datapath, illustrated by walking one cold miss
/// through the cycle-level model.
pub fn fig2() -> Figure {
    use miv_cache::CacheConfig;
    use miv_core::timing::{CheckerConfig, L2Controller};
    use miv_mem::MemoryBusConfig;

    let mut ck = CheckerConfig::hpca03(Scheme::CHash);
    ck.protected_bytes = 256 << 20;
    let mut ctl = L2Controller::new(ck, CacheConfig::l2(1 << 20, 64), MemoryBusConfig::default());
    ctl.enable_probe();
    let ready = ctl.access(0, 0x10_0000, false, false);
    let horizon = ctl.verification_horizon();
    let s = ctl.stats();
    let mut timeline = String::new();
    for event in ctl.take_probe() {
        use miv_core::timing::CheckerEvent as E;
        let line = match event {
            E::DemandFetch { addr, arrives } => {
                format!("  cycle {arrives:>5}: demand block {addr:#x} arrives from memory\n")
            }
            E::HashFetch { addr, arrives } => {
                format!("  cycle {arrives:>5}: hash chunk block {addr:#x} arrives\n")
            }
            E::HashScheduled { chunk, done } => {
                format!("  cycle {done:>5}: digest of chunk {chunk} ready\n")
            }
            E::VerifyComplete { chunk, done } => {
                format!("  cycle {done:>5}: chunk {chunk} verified against its parent\n")
            }
            E::WriteBack { addr, done } => {
                format!("  cycle {done:>5}: write-back of {addr:#x} complete\n")
            }
        };
        timeline.push_str(&line);
    }
    let body = format!(
        "Hardware: a hash checking/generating unit beside the L2.\n\
         (a) L2 miss: the block is read from memory into the READ BUFFER,\n\
             returned to the core speculatively, and hashed; the digest is\n\
             compared against the parent hash read from the L2 (or the\n\
             on-chip root register). Mismatch raises a security exception.\n\
         (b) L2 write-back: the evicted block sits in the WRITE BUFFER\n\
             while the unit computes its new hash, which is stored back\n\
             into the L2 through a normal write.\n\n\
         One cold miss through the model (1 MB L2, cold tree):\n\
           data returned to core at cycle {ready}\n\
           all background checks complete at cycle {horizon}\n\
           demand fetches: {}   hash-chunk fetches: {}   verifications: {}\n\n\
         checker event timeline:\n{timeline}",
        s.data_fetches, s.hash_fetches, s.verifications,
    );
    Figure::new("fig2", "Hardware implementation of the chash scheme", body)
}

// ---------------------------------------------------------------------
// Figure 3: IPC for base / chash / naive across six L2 configurations
// ---------------------------------------------------------------------

/// One (cache config, benchmark) measurement triple for Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// L2 capacity in KB.
    pub l2_kb: u64,
    /// L2 line size in bytes.
    pub line: u32,
    /// Benchmark name.
    pub bench: String,
    /// Baseline IPC.
    pub base: f64,
    /// chash IPC.
    pub chash: f64,
    /// naive IPC.
    pub naive: f64,
}

/// Runs the Figure 3 sweep and returns the raw rows.
pub fn fig3_data(xp: &ExperimentConfig) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for &(l2_kb, line) in &[
        (256u64, 64u32),
        (1024, 64),
        (4096, 64),
        (256, 128),
        (1024, 128),
        (4096, 128),
    ] {
        for bench in Benchmark::ALL {
            let base = run_one(
                SystemConfig::hpca03(Scheme::Base, l2_kb << 10, line),
                bench,
                xp,
            );
            let chash = run_one(
                SystemConfig::hpca03(Scheme::CHash, l2_kb << 10, line),
                bench,
                xp,
            );
            let naive = run_one(
                SystemConfig::hpca03(Scheme::Naive, l2_kb << 10, line),
                bench,
                xp,
            );
            rows.push(Fig3Row {
                l2_kb,
                line,
                bench: bench.name().into(),
                base: base.ipc,
                chash: chash.ipc,
                naive: naive.ipc,
            });
        }
    }
    rows
}

/// Figure 3: IPC comparison of base/chash/naive for six L2 configurations.
pub fn fig3(xp: &ExperimentConfig) -> Figure {
    let rows = fig3_data(xp);
    let mut body = String::new();
    for &(l2_kb, line) in &[
        (256u64, 64u32),
        (1024, 64),
        (4096, 64),
        (256, 128),
        (1024, 128),
        (4096, 128),
    ] {
        let mut t = Table::new(vec![
            "bench".into(),
            "base IPC".into(),
            "chash IPC".into(),
            "naive IPC".into(),
            "chash/base".into(),
            "naive/base".into(),
        ]);
        for r in rows.iter().filter(|r| r.l2_kb == l2_kb && r.line == line) {
            t.row(vec![
                r.bench.clone(),
                f3(r.base),
                f3(r.chash),
                f3(r.naive),
                f3(r.chash / r.base),
                f3(r.naive / r.base),
            ]);
        }
        body.push_str(&format!(
            "({} KB L2, {} B lines)\n{}\n",
            l2_kb,
            line,
            t.render()
        ));
    }
    Figure::new(
        "fig3",
        "IPC of base, chash and naive for six L2 configurations",
        body,
    )
}

// ---------------------------------------------------------------------
// Figure 4: L2 data miss rates (cache pollution)
// ---------------------------------------------------------------------

/// One Figure 4 measurement.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// L2 capacity in KB.
    pub l2_kb: u64,
    /// Benchmark name.
    pub bench: String,
    /// Baseline L2 data miss rate.
    pub base: f64,
    /// chash L2 data miss rate.
    pub chash: f64,
}

/// Runs the Figure 4 sweep.
pub fn fig4_data(xp: &ExperimentConfig) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &l2_kb in &[256u64, 4096] {
        for bench in Benchmark::ALL {
            let base = run_one(
                SystemConfig::hpca03(Scheme::Base, l2_kb << 10, 64),
                bench,
                xp,
            );
            let chash = run_one(
                SystemConfig::hpca03(Scheme::CHash, l2_kb << 10, 64),
                bench,
                xp,
            );
            rows.push(Fig4Row {
                l2_kb,
                bench: bench.name().into(),
                base: base.l2_data_miss_rate,
                chash: chash.l2_data_miss_rate,
            });
        }
    }
    rows
}

/// Figure 4: L2 miss rates of program data, base vs chash.
pub fn fig4(xp: &ExperimentConfig) -> Figure {
    let rows = fig4_data(xp);
    let mut t = Table::new(vec![
        "bench".into(),
        "base-256K".into(),
        "chash-256K".into(),
        "base-4M".into(),
        "chash-4M".into(),
    ]);
    for bench in Benchmark::ALL {
        let find = |kb: u64| {
            rows.iter()
                .find(|r| r.l2_kb == kb && r.bench == bench.name())
                .expect("row present")
        };
        let small = find(256);
        let big = find(4096);
        t.row(vec![
            bench.name().into(),
            pct(small.base),
            pct(small.chash),
            pct(big.base),
            pct(big.chash),
        ]);
    }
    Figure::new(
        "fig4",
        "L2 data miss rates: caching hashes pollutes small caches, not big ones",
        t.render(),
    )
}

// ---------------------------------------------------------------------
// Figure 5: extra memory accesses and bandwidth pollution
// ---------------------------------------------------------------------

/// One Figure 5 measurement.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Benchmark name.
    pub bench: String,
    /// Extra loads per L2 miss, chash.
    pub chash_extra: f64,
    /// Extra loads per L2 miss, naive.
    pub naive_extra: f64,
    /// Bus bytes, baseline.
    pub base_bytes: u64,
    /// Bus bytes, chash.
    pub chash_bytes: u64,
    /// Bus bytes, naive.
    pub naive_bytes: u64,
}

/// Runs the Figure 5 sweep (1 MB L2, 64-B lines).
pub fn fig5_data(xp: &ExperimentConfig) -> Vec<Fig5Row> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let base = run_one(SystemConfig::hpca03(Scheme::Base, 1 << 20, 64), bench, xp);
            let chash = run_one(SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64), bench, xp);
            let naive = run_one(SystemConfig::hpca03(Scheme::Naive, 1 << 20, 64), bench, xp);
            Fig5Row {
                bench: bench.name().into(),
                chash_extra: chash.extra_loads_per_miss,
                naive_extra: naive.extra_loads_per_miss,
                base_bytes: base.bus_bytes,
                chash_bytes: chash.bus_bytes,
                naive_bytes: naive.bus_bytes,
            }
        })
        .collect()
}

/// Figure 5: (a) additional loads per L2 miss, (b) normalized bandwidth.
pub fn fig5(xp: &ExperimentConfig) -> Figure {
    let rows = fig5_data(xp);
    let mut a = Table::new(vec![
        "bench".into(),
        "chash extra/miss".into(),
        "naive extra/miss".into(),
    ]);
    let mut b = Table::new(vec![
        "bench".into(),
        "base".into(),
        "chash".into(),
        "naive".into(),
    ]);
    for r in &rows {
        a.row(vec![r.bench.clone(), f2(r.chash_extra), f2(r.naive_extra)]);
        // Normalizing needs meaningful baseline traffic; benchmarks whose
        // data fits the cache move almost nothing and get a dash.
        if r.base_bytes < 64 * 1000 {
            b.row(vec![r.bench.clone(), "-".into(), "-".into(), "-".into()]);
        } else {
            let base = r.base_bytes as f64;
            b.row(vec![
                r.bench.clone(),
                f2(1.0),
                f2(r.chash_bytes as f64 / base),
                f2(r.naive_bytes as f64 / base),
            ]);
        }
    }
    let body = format!(
        "(a) additional blocks loaded from memory per L2 miss (1 MB, 64 B):\n{}\n\
         (b) memory bandwidth usage normalized to base:\n{}",
        a.render(),
        b.render()
    );
    Figure::new(
        "fig5",
        "Memory bandwidth: hash caching removes the log-depth traffic",
        body,
    )
}

// ---------------------------------------------------------------------
// Figure 6: hash throughput sweep
// ---------------------------------------------------------------------

/// One Figure 6 series point.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: String,
    /// IPC at each swept throughput, in `THROUGHPUTS` order.
    pub ipc: Vec<f64>,
}

/// The swept hash throughputs in GB/s (Figure 6).
pub const FIG6_THROUGHPUTS: [f64; 4] = [6.4, 3.2, 1.6, 0.8];

/// Runs the Figure 6 sweep (chash, 1 MB L2, 64-B lines).
pub fn fig6_data(xp: &ExperimentConfig) -> Vec<Fig6Row> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let ipc = FIG6_THROUGHPUTS
                .iter()
                .map(|&gbps| {
                    let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64)
                        .with_hash_throughput(Throughput::gbps(gbps));
                    run_one(cfg, bench, xp).ipc
                })
                .collect();
            Fig6Row {
                bench: bench.name().into(),
                ipc,
            }
        })
        .collect()
}

/// Figure 6: the effect of hash-computation throughput on IPC.
pub fn fig6(xp: &ExperimentConfig) -> Figure {
    let rows = fig6_data(xp);
    let mut t = Table::new(
        std::iter::once("bench".to_string())
            .chain(FIG6_THROUGHPUTS.iter().map(|g| format!("{g} GB/s")))
            .collect(),
    );
    for r in &rows {
        t.row(
            std::iter::once(r.bench.clone())
                .chain(r.ipc.iter().map(|&x| f3(x)))
                .collect(),
        );
    }
    Figure::new(
        "fig6",
        "IPC vs hash throughput (chash, 1 MB / 64 B): throughput above the memory bandwidth suffices",
        t.render(),
    )
}

// ---------------------------------------------------------------------
// Figure 7: buffer size sweep
// ---------------------------------------------------------------------

/// One Figure 7 series point.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: String,
    /// IPC at each swept buffer size, in `FIG7_BUFFERS` order.
    pub ipc: Vec<f64>,
}

/// The swept buffer sizes (Figure 7).
pub const FIG7_BUFFERS: [u32; 5] = [2, 4, 8, 16, 32];

/// Runs the Figure 7 sweep (chash, 1 MB L2, 64-B lines).
pub fn fig7_data(xp: &ExperimentConfig) -> Vec<Fig7Row> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let ipc = FIG7_BUFFERS
                .iter()
                .map(|&entries| {
                    let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64)
                        .with_buffer_entries(entries);
                    run_one(cfg, bench, xp).ipc
                })
                .collect();
            Fig7Row {
                bench: bench.name().into(),
                ipc,
            }
        })
        .collect()
}

/// Figure 7: the effect of read/write buffer size on IPC.
pub fn fig7(xp: &ExperimentConfig) -> Figure {
    let rows = fig7_data(xp);
    let mut t = Table::new(
        std::iter::once("bench".to_string())
            .chain(FIG7_BUFFERS.iter().map(|b| format!("{b} entries")))
            .collect(),
    );
    for r in &rows {
        t.row(
            std::iter::once(r.bench.clone())
                .chain(r.ipc.iter().map(|&x| f3(x)))
                .collect(),
        );
    }
    Figure::new(
        "fig7",
        "IPC vs hash buffer size (chash, 1 MB / 64 B): a few entries suffice",
        t.render(),
    )
}

// ---------------------------------------------------------------------
// Figure 8: memory-overhead-reducing schemes
// ---------------------------------------------------------------------

/// One Figure 8 measurement.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: String,
    /// Baseline IPC (64-B lines).
    pub base64: f64,
    /// chash with 64-B lines/chunks.
    pub c64: f64,
    /// chash with 128-B lines/chunks.
    pub c128: f64,
    /// mhash: two 64-B blocks per chunk.
    pub m64: f64,
    /// ihash: two 64-B blocks per chunk, incremental MAC.
    pub i64: f64,
}

/// Runs the Figure 8 sweep (1 MB L2).
pub fn fig8_data(xp: &ExperimentConfig) -> Vec<Fig8Row> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let base64 = run_one(SystemConfig::hpca03(Scheme::Base, 1 << 20, 64), bench, xp);
            let c64 = run_one(SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64), bench, xp);
            let c128 = run_one(SystemConfig::hpca03(Scheme::CHash, 1 << 20, 128), bench, xp);
            let m64 = run_one(SystemConfig::hpca03(Scheme::MHash, 1 << 20, 64), bench, xp);
            let i64 = run_one(SystemConfig::hpca03(Scheme::IHash, 1 << 20, 64), bench, xp);
            Fig8Row {
                bench: bench.name().into(),
                base64: base64.ipc,
                c64: c64.ipc,
                c128: c128.ipc,
                m64: m64.ipc,
                i64: i64.ipc,
            }
        })
        .collect()
}

/// Figure 8: performance of the reduced-memory-overhead schemes.
pub fn fig8(xp: &ExperimentConfig) -> Figure {
    let rows = fig8_data(xp);
    let mut t = Table::new(vec![
        "bench".into(),
        "c-64B".into(),
        "c-128B".into(),
        "m-64B".into(),
        "i-64B".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.bench.clone(),
            f3(r.c64),
            f3(r.c128),
            f3(r.m64),
            f3(r.i64),
        ]);
    }
    let overhead64 = TreeLayout::new(256 << 20, 64, 64).overhead();
    let overhead128 = TreeLayout::new(256 << 20, 128, 64).overhead();
    let body = format!(
        "{}\nmemory overhead: c-64B {} — c-128B / m-64B / i-64B {}\n",
        t.render(),
        pct(overhead64),
        pct(overhead128),
    );
    Figure::new(
        "fig8",
        "IPC of the schemes with reduced hash memory overhead (1 MB L2)",
        body,
    )
}

// ---------------------------------------------------------------------
// Headline claims
// ---------------------------------------------------------------------

/// The paper's headline numbers, computed from the Figure 3 data.
#[derive(Debug, Clone)]
pub struct Claims {
    /// Worst chash overhead across benchmarks at 256 KB / 64 B.
    pub worst_chash_overhead_small: f64,
    /// The benchmark exhibiting it.
    pub worst_bench_small: String,
    /// Worst chash overhead at 4 MB (any line size).
    pub worst_chash_overhead_4mb: f64,
    /// Worst naive slowdown factor anywhere.
    pub worst_naive_slowdown: f64,
    /// The benchmark exhibiting it.
    pub worst_naive_bench: String,
}

/// Computes the headline claims from Figure 3 rows.
pub fn claims_from(rows: &[Fig3Row]) -> Claims {
    let overhead = |r: &Fig3Row, ipc: f64| 1.0 - ipc / r.base;
    let small = rows
        .iter()
        .filter(|r| r.l2_kb == 256 && r.line == 64)
        .max_by(|a, b| {
            overhead(a, a.chash)
                .partial_cmp(&overhead(b, b.chash))
                .expect("finite")
        })
        .expect("rows present");
    let big = rows
        .iter()
        .filter(|r| r.l2_kb == 4096)
        .map(|r| overhead(r, r.chash))
        .fold(f64::MIN, f64::max);
    let naive = rows
        .iter()
        .max_by(|a, b| {
            (a.base / a.naive)
                .partial_cmp(&(b.base / b.naive))
                .expect("finite")
        })
        .expect("rows present");
    Claims {
        worst_chash_overhead_small: overhead(small, small.chash),
        worst_bench_small: small.bench.clone(),
        worst_chash_overhead_4mb: big,
        worst_naive_slowdown: naive.base / naive.naive,
        worst_naive_bench: naive.bench.clone(),
    }
}

/// Headline claims (§1, §6.4, §7) computed from a fresh Figure 3 sweep.
pub fn claims(xp: &ExperimentConfig) -> Figure {
    let rows = fig3_data(xp);
    let c = claims_from(&rows);
    let body = format!(
        "worst chash overhead at 256 KB / 64 B : {} ({})\n\
         worst chash overhead at 4 MB         : {}\n\
         worst naive slowdown                 : {:.1}x ({})\n\n\
         paper: chash worst case ~20-25% on the small cache (mcf-like),\n\
         under 5% with a 4 MB L2; naive up to ~10x on the streaming\n\
         benchmarks and not rescued by bigger caches.\n",
        pct(c.worst_chash_overhead_small),
        c.worst_bench_small,
        pct(c.worst_chash_overhead_4mb),
        c.worst_naive_slowdown,
        c.worst_naive_bench,
    );
    Figure::new("claims", "Headline numbers", body)
}

/// The raw measured rows of every quantitative artifact, for JSON export
/// (plotting pipelines consume this instead of re-parsing text tables).
#[derive(Debug, Clone)]
pub struct DataExport {
    /// The experiment parameters that produced the data.
    pub config: ExperimentConfig,
    /// Figure 3 rows.
    pub fig3: Vec<Fig3Row>,
    /// Figure 4 rows.
    pub fig4: Vec<Fig4Row>,
    /// Figure 5 rows.
    pub fig5: Vec<Fig5Row>,
    /// Figure 6 rows.
    pub fig6: Vec<Fig6Row>,
    /// Figure 7 rows.
    pub fig7: Vec<Fig7Row>,
    /// Figure 8 rows.
    pub fig8: Vec<Fig8Row>,
    /// Headline claims derived from the Figure 3 rows.
    pub claims: Claims,
}

impl DataExport {
    /// JSON form consumed by plotting pipelines (replaces the former
    /// `serde_json` path; the workspace carries no external deps).
    pub fn to_json(&self) -> JsonValue {
        let rows = |items: &[JsonValue]| JsonValue::Array(items.to_vec());
        let mut config = JsonValue::obj();
        config.push("warmup", self.config.warmup);
        config.push("measure", self.config.measure);
        config.push("seed", self.config.seed);

        let fig3: Vec<JsonValue> = self
            .fig3
            .iter()
            .map(|r| {
                let mut o = JsonValue::obj();
                o.push("l2_kb", r.l2_kb);
                o.push("line", r.line);
                o.push("bench", r.bench.as_str());
                o.push("base", r.base);
                o.push("chash", r.chash);
                o.push("naive", r.naive);
                o
            })
            .collect();
        let fig4: Vec<JsonValue> = self
            .fig4
            .iter()
            .map(|r| {
                let mut o = JsonValue::obj();
                o.push("l2_kb", r.l2_kb);
                o.push("bench", r.bench.as_str());
                o.push("base", r.base);
                o.push("chash", r.chash);
                o
            })
            .collect();
        let fig5: Vec<JsonValue> = self
            .fig5
            .iter()
            .map(|r| {
                let mut o = JsonValue::obj();
                o.push("bench", r.bench.as_str());
                o.push("chash_extra", r.chash_extra);
                o.push("naive_extra", r.naive_extra);
                o.push("base_bytes", r.base_bytes);
                o.push("chash_bytes", r.chash_bytes);
                o.push("naive_bytes", r.naive_bytes);
                o
            })
            .collect();
        let series = |bench: &str, ipc: &[f64]| {
            let mut o = JsonValue::obj();
            o.push("bench", bench);
            o.push(
                "ipc",
                ipc.iter().map(|&x| JsonValue::Float(x)).collect::<Vec<_>>(),
            );
            o
        };
        let fig6: Vec<JsonValue> = self.fig6.iter().map(|r| series(&r.bench, &r.ipc)).collect();
        let fig7: Vec<JsonValue> = self.fig7.iter().map(|r| series(&r.bench, &r.ipc)).collect();
        let fig8: Vec<JsonValue> = self
            .fig8
            .iter()
            .map(|r| {
                let mut o = JsonValue::obj();
                o.push("bench", r.bench.as_str());
                o.push("base64", r.base64);
                o.push("c64", r.c64);
                o.push("c128", r.c128);
                o.push("m64", r.m64);
                o.push("i64", r.i64);
                o
            })
            .collect();
        let mut claims = JsonValue::obj();
        claims.push(
            "worst_chash_overhead_small",
            self.claims.worst_chash_overhead_small,
        );
        claims.push("worst_bench_small", self.claims.worst_bench_small.as_str());
        claims.push(
            "worst_chash_overhead_4mb",
            self.claims.worst_chash_overhead_4mb,
        );
        claims.push("worst_naive_slowdown", self.claims.worst_naive_slowdown);
        claims.push("worst_naive_bench", self.claims.worst_naive_bench.as_str());

        let mut doc = JsonValue::obj();
        doc.push("config", config);
        doc.push("fig3", rows(&fig3));
        doc.push("fig4", rows(&fig4));
        doc.push("fig5", rows(&fig5));
        doc.push("fig6", rows(&fig6));
        doc.push("fig7", rows(&fig7));
        doc.push("fig8", rows(&fig8));
        doc.push("claims", claims);
        doc
    }
}

/// Runs every quantitative sweep and gathers the raw rows.
pub fn export_data(xp: &ExperimentConfig) -> DataExport {
    let fig3 = fig3_data(xp);
    let claims = claims_from(&fig3);
    DataExport {
        config: *xp,
        fig3,
        fig4: fig4_data(xp),
        fig5: fig5_data(xp),
        fig6: fig6_data(xp),
        fig7: fig7_data(xp),
        fig8: fig8_data(xp),
        claims,
    }
}

/// Runs every artifact in order.
pub fn all(xp: &ExperimentConfig) -> Vec<Figure> {
    vec![
        table1(),
        fig1(),
        fig2(),
        fig3(xp),
        fig4(xp),
        fig5(xp),
        fig6(xp),
        fig7(xp),
        fig8(xp),
        claims(xp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_and_diagrams_render() {
        assert!(table1().body.contains("1 GHz"));
        assert!(fig1().body.contains("secure root"));
        let f2fig = fig2();
        assert!(f2fig.body.contains("READ BUFFER"));
        assert!(f2fig.body.contains("data returned"));
        assert!(format!("{}", table1()).contains("== table1"));
    }

    #[test]
    fn quick_fig4_shows_pollution_shrinking_with_cache_size() {
        // The quick window is too noisy for per-benchmark claims; use a
        // medium window and compare the averaged relative inflation.
        let xp = ExperimentConfig {
            warmup: 50_000,
            measure: 250_000,
            seed: 42,
        };
        let rows = fig4_data(&xp);
        assert_eq!(rows.len(), 18);
        // Relative pollution (chash / base miss rate) averaged over the
        // benchmarks with meaningful traffic must shrink with cache size.
        let avg_rel = |kb: u64| {
            let sel: Vec<_> = rows
                .iter()
                .filter(|r| r.l2_kb == kb && r.base > 0.005)
                .collect();
            assert!(!sel.is_empty());
            sel.iter().map(|r| r.chash / r.base).sum::<f64>() / sel.len() as f64
        };
        let small = avg_rel(256);
        let big = avg_rel(4096);
        assert!(small > 1.1, "pollution must be visible at 256 KB: {small}");
        assert!(small > big, "{small} vs {big}");
    }

    #[test]
    fn quick_fig5_naive_extra_loads_near_tree_depth() {
        let xp = ExperimentConfig::quick();
        let rows = fig5_data(&xp);
        let depth = TreeLayout::new(256 << 20, 64, 64).levels() as f64;
        // Benchmarks that still miss at 1 MB and are read-dominated (the
        // ones whose naive walks are not skipped by whole-line store
        // allocations): the extra loads per miss sit near the tree depth.
        for name in ["mcf", "art"] {
            let r = rows.iter().find(|r| r.bench == name).expect("row present");
            assert!(
                r.naive_extra > depth * 0.4 && r.naive_extra < depth * 2.5,
                "{}: naive extra {} vs depth {}",
                r.bench,
                r.naive_extra,
                depth
            );
            assert!(
                r.chash_extra < r.naive_extra / 2.0,
                "{}: chash {} vs naive {}",
                r.bench,
                r.chash_extra,
                r.naive_extra
            );
        }
        // Caching never fetches more than naive for any benchmark that
        // misses at all.
        for r in rows.iter().filter(|r| r.naive_extra > 0.0) {
            assert!(r.chash_extra <= r.naive_extra, "{}", r.bench);
        }
    }

    #[test]
    fn claims_math() {
        let rows = vec![
            Fig3Row {
                l2_kb: 256,
                line: 64,
                bench: "a".into(),
                base: 1.0,
                chash: 0.8,
                naive: 0.2,
            },
            Fig3Row {
                l2_kb: 4096,
                line: 64,
                bench: "a".into(),
                base: 1.0,
                chash: 0.99,
                naive: 0.2,
            },
            Fig3Row {
                l2_kb: 256,
                line: 64,
                bench: "b".into(),
                base: 2.0,
                chash: 1.9,
                naive: 0.25,
            },
            Fig3Row {
                l2_kb: 4096,
                line: 64,
                bench: "b".into(),
                base: 2.0,
                chash: 1.96,
                naive: 0.3,
            },
        ];
        let c = claims_from(&rows);
        assert_eq!(c.worst_bench_small, "a");
        assert!((c.worst_chash_overhead_small - 0.2).abs() < 1e-9);
        assert!((c.worst_chash_overhead_4mb - 0.02).abs() < 1e-6);
        assert_eq!(c.worst_naive_bench, "b");
        assert!((c.worst_naive_slowdown - 8.0).abs() < 1e-9);
    }
}
