//! Regeneration of every table and figure in the paper's evaluation (§6).
//!
//! Each artifact is an [`Experiment`] in the [`EXPERIMENTS`] registry:
//! an id (`table1`, `fig3`, …), the paper's caption, an optional raw-data
//! function for JSON export, and a renderer producing the text
//! [`Figure`]. Absolute numbers differ from the paper — our substrate is
//! a synthetic trace model, not SimpleScalar running SPEC binaries — but
//! the comparisons the paper draws (who wins, by what factor, which
//! trends hold) are reproduced; `claims` checks the headline statements
//! explicitly. See `EXPERIMENTS.md` at the repository root for the
//! recorded paper-vs-measured comparison.
//!
//! Every sweep runs through the parallel [`SweepRunner`](crate::sweep):
//! the [`RunCtx`] passed to each `figN_data` function carries the
//! experiment parameters, the worker count and an optional telemetry
//! sink, and sweeps return their rows in a fixed request order — so the
//! rendered figures are byte-identical at any `--jobs` count.

use std::cell::RefCell;

use miv_core::layout::{render_tree, TreeLayout};
use miv_core::timing::Scheme;
use miv_hash::{HashAlgo, Throughput};
use miv_obs::JsonValue;
use miv_trace::Benchmark;

use crate::config::SystemConfig;
use crate::report::{f2, f3, pct, Table};
use crate::sweep::{RunRequest, SweepRunner};
use crate::system::RunResult;
use crate::telemetry::Telemetry;

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Warm-up instructions per run (statistics discarded).
    pub warmup: u64,
    /// Measured instructions per run.
    pub measure: u64,
    /// Trace seed (same seed per benchmark across schemes, so scheme
    /// comparisons see identical instruction streams).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            warmup: 200_000,
            measure: 1_000_000,
            seed: 42,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            warmup: 10_000,
            measure: 60_000,
            seed: 42,
        }
    }

    /// JSON form (the `config` section of the data export).
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::obj();
        o.push("warmup", self.warmup);
        o.push("measure", self.measure);
        o.push("seed", self.seed);
        o
    }
}

/// The explicit run context every experiment takes: parameters, the
/// parallel sweep engine, and an optional telemetry sink that
/// aggregates every run of every sweep executed through this context.
///
/// This replaces the former `with_telemetry` thread-local slot — the
/// context travels as an argument, so nothing about a sweep depends on
/// ambient thread state and the runs themselves can fan out across
/// worker threads.
///
/// # Examples
///
/// ```
/// use miv_sim::experiments::{fig5_data, ExperimentConfig, RunCtx};
///
/// let ctx = RunCtx::new(ExperimentConfig {
///     warmup: 2_000,
///     measure: 8_000,
///     seed: 42,
/// })
/// .with_jobs(2);
/// let rows = fig5_data(&ctx);
/// assert_eq!(rows.len(), 9);
/// ```
#[derive(Debug)]
pub struct RunCtx {
    /// Experiment parameters applied to every run.
    pub xp: ExperimentConfig,
    runner: SweepRunner,
    telemetry: Option<Telemetry>,
    /// Figure 3 rows, memoized because `claims` (and therefore `all` and
    /// the data export) derives from the same sweep.
    fig3_rows: RefCell<Option<Vec<Fig3Row>>>,
}

impl RunCtx {
    /// A context running sweeps with one worker per available core and
    /// no telemetry sink.
    pub fn new(xp: ExperimentConfig) -> Self {
        RunCtx {
            xp,
            runner: SweepRunner::new(0),
            telemetry: None,
            fig3_rows: RefCell::new(None),
        }
    }

    /// Overrides the worker count (`0` = one per available core).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        let capture = self.telemetry.as_ref().map(|t| t.events().capacity());
        self.runner = SweepRunner::new(jobs);
        if let Some(capacity) = capture {
            self.runner = self.runner.capture_telemetry(capacity);
        }
        self
    }

    /// Aggregates every run's metrics and events into `telemetry`
    /// (counters sum, histograms merge, the event ring keeps the tail).
    /// Each run records into a private per-worker recorder; snapshots
    /// are absorbed in request order, so the aggregate is identical at
    /// any worker count.
    pub fn record_into(mut self, telemetry: &Telemetry) -> Self {
        self.runner = self.runner.capture_telemetry(telemetry.events().capacity());
        self.telemetry = Some(telemetry.clone());
        self
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.runner.jobs()
    }

    /// A request for one paper-machine run under this context's
    /// parameters.
    fn request(&self, config: SystemConfig, bench: Benchmark) -> RunRequest {
        RunRequest::new(config, bench, self.xp.warmup, self.xp.measure, self.xp.seed)
    }

    /// Executes a batch of requests through the sweep engine, absorbs
    /// telemetry in request order, and returns the results in request
    /// order.
    fn sweep(&self, requests: &[RunRequest]) -> Vec<RunResult> {
        let outcomes = self.runner.run(requests);
        if let Some(telemetry) = &self.telemetry {
            for outcome in &outcomes {
                telemetry.absorb(outcome.telemetry.as_ref().expect("capture enabled"));
            }
        }
        outcomes.into_iter().map(|o| o.result).collect()
    }
}

/// One rendered experiment artifact.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Artifact id (`table1`, `fig3`, …).
    pub id: String,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// Rendered text body.
    pub body: String,
}

impl Figure {
    fn new(id: &str, title: &str, body: String) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            body,
        }
    }
}

impl std::fmt::Display for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        f.write_str(&self.body)
    }
}

// ---------------------------------------------------------------------
// The experiment registry
// ---------------------------------------------------------------------

/// One registered artifact: its id, caption, optional raw-data export
/// and text renderer. The single [`EXPERIMENTS`] table drives figure
/// dispatch (`figures fig5`, `figures all`) and the JSON data export.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Artifact id (`table1`, `fig3`, …).
    pub id: &'static str,
    /// Human title echoing the paper's caption.
    pub title: &'static str,
    /// Raw measured rows as JSON, for the quantitative artifacts.
    data: Option<fn(&RunCtx) -> JsonValue>,
    /// Rendered text body.
    body: fn(&RunCtx) -> String,
}

impl Experiment {
    /// Renders the artifact under `ctx`.
    pub fn render(&self, ctx: &RunCtx) -> Figure {
        Figure::new(self.id, self.title, (self.body)(ctx))
    }

    /// The artifact's raw measured rows as JSON (`None` for the
    /// descriptive artifacts `table1`/`fig1`/`fig2`).
    pub fn data(&self, ctx: &RunCtx) -> Option<JsonValue> {
        self.data.map(|f| f(ctx))
    }

    /// Whether the artifact exports raw data rows.
    pub fn has_data(&self) -> bool {
        self.data.is_some()
    }
}

/// Every artifact of the paper's evaluation, in presentation order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "table1",
        title: "Architectural parameters used in simulations",
        data: None,
        body: |_| table1_body(),
    },
    Experiment {
        id: "fig1",
        title: "A hash tree",
        data: None,
        body: |_| fig1_body(),
    },
    Experiment {
        id: "fig2",
        title: "Hardware implementation of the chash scheme",
        data: None,
        body: |_| fig2_body(),
    },
    Experiment {
        id: "fig3",
        title: "IPC of base, chash and naive for six L2 configurations",
        data: Some(|ctx| fig3_json(&fig3_data(ctx))),
        body: fig3_body,
    },
    Experiment {
        id: "fig4",
        title: "L2 data miss rates: caching hashes pollutes small caches, not big ones",
        data: Some(|ctx| fig4_json(&fig4_data(ctx))),
        body: fig4_body,
    },
    Experiment {
        id: "fig5",
        title: "Memory bandwidth: hash caching removes the log-depth traffic",
        data: Some(|ctx| fig5_json(&fig5_data(ctx))),
        body: fig5_body,
    },
    Experiment {
        id: "fig6",
        title: "IPC vs hash throughput (chash, 1 MB / 64 B): throughput above the memory bandwidth suffices",
        data: Some(|ctx| fig6_json(&fig6_data(ctx))),
        body: fig6_body,
    },
    Experiment {
        id: "fig7",
        title: "IPC vs hash buffer size (chash, 1 MB / 64 B): a few entries suffice",
        data: Some(|ctx| fig7_json(&fig7_data(ctx))),
        body: fig7_body,
    },
    Experiment {
        id: "fig8",
        title: "IPC of the schemes with reduced hash memory overhead (1 MB L2)",
        data: Some(|ctx| fig8_json(&fig8_data(ctx))),
        body: fig8_body,
    },
    Experiment {
        id: "hashes",
        title: "IPC per hash unit (chash, 1 MB / 64 B): the unit matters only through its throughput",
        data: Some(|ctx| hashes_json(&hashes_data(ctx))),
        body: hashes_body,
    },
    Experiment {
        id: "claims",
        title: "Headline numbers",
        data: Some(|ctx| claims_json(&claims_from(&fig3_data(ctx)))),
        body: claims_body,
    },
];

/// Looks up a registered artifact by id.
pub fn find_experiment(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

/// Renders every artifact in presentation order.
pub fn all(ctx: &RunCtx) -> Vec<Figure> {
    EXPERIMENTS.iter().map(|e| e.render(ctx)).collect()
}

/// The raw measured rows of every quantitative artifact as one JSON
/// document (`config` plus one section per artifact with data), for
/// plotting pipelines that would otherwise re-parse the text tables.
/// The `claims` section derives from the same Figure 3 sweep as `fig3`
/// (memoized in the context), so the sweep runs once.
pub fn export_data(ctx: &RunCtx) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("config", ctx.xp.to_json());
    for e in EXPERIMENTS {
        if let Some(data) = e.data(ctx) {
            doc.push(e.id, data);
        }
    }
    doc
}

// ---------------------------------------------------------------------
// Table 1 and the two descriptive figures
// ---------------------------------------------------------------------

fn table1_body() -> String {
    SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64).table1()
}

fn fig1_body() -> String {
    let small = TreeLayout::new(16 * 64, 64, 64);
    let big = TreeLayout::new(256 << 20, 64, 64);
    format!(
        "A small example (16 data chunks, 64-B chunks, 4-ary):\n\n{}\n\
         The Table 1 configuration:\n  {}\n  memory overhead: {}\n",
        render_tree(&small),
        big,
        pct(big.overhead()),
    )
}

fn fig2_body() -> String {
    use miv_cache::CacheConfig;
    use miv_core::timing::{CheckerConfig, L2Controller};
    use miv_mem::MemoryBusConfig;

    let mut ck = CheckerConfig::hpca03(Scheme::CHash);
    ck.protected_bytes = 256 << 20;
    let mut ctl = L2Controller::new(ck, CacheConfig::l2(1 << 20, 64), MemoryBusConfig::default());
    ctl.enable_probe();
    let ready = ctl.access(0, 0x10_0000, false, false);
    let horizon = ctl.verification_horizon();
    let s = ctl.stats();
    let mut timeline = String::new();
    for event in ctl.take_probe() {
        use miv_core::timing::CheckerEvent as E;
        let line = match event {
            E::DemandFetch { addr, arrives } => {
                format!("  cycle {arrives:>5}: demand block {addr:#x} arrives from memory\n")
            }
            E::HashFetch { addr, arrives } => {
                format!("  cycle {arrives:>5}: hash chunk block {addr:#x} arrives\n")
            }
            E::HashScheduled { chunk, done } => {
                format!("  cycle {done:>5}: digest of chunk {chunk} ready\n")
            }
            E::VerifyComplete { chunk, done } => {
                format!("  cycle {done:>5}: chunk {chunk} verified against its parent\n")
            }
            E::WriteBack { addr, done } => {
                format!("  cycle {done:>5}: write-back of {addr:#x} complete\n")
            }
        };
        timeline.push_str(&line);
    }
    format!(
        "Hardware: a hash checking/generating unit beside the L2.\n\
         (a) L2 miss: the block is read from memory into the READ BUFFER,\n\
             returned to the core speculatively, and hashed; the digest is\n\
             compared against the parent hash read from the L2 (or the\n\
             on-chip root register). Mismatch raises a security exception.\n\
         (b) L2 write-back: the evicted block sits in the WRITE BUFFER\n\
             while the unit computes its new hash, which is stored back\n\
             into the L2 through a normal write.\n\n\
         One cold miss through the model (1 MB L2, cold tree):\n\
           data returned to core at cycle {ready}\n\
           all background checks complete at cycle {horizon}\n\
           demand fetches: {}   hash-chunk fetches: {}   verifications: {}\n\n\
         checker event timeline:\n{timeline}",
        s.data_fetches, s.hash_fetches, s.verifications,
    )
}

// ---------------------------------------------------------------------
// Figure 3: IPC for base / chash / naive across six L2 configurations
// ---------------------------------------------------------------------

/// The six (L2 KB, line bytes) configurations Figure 3 sweeps.
const FIG3_CONFIGS: [(u64, u32); 6] = [
    (256, 64),
    (1024, 64),
    (4096, 64),
    (256, 128),
    (1024, 128),
    (4096, 128),
];

/// One (cache config, benchmark) measurement triple for Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// L2 capacity in KB.
    pub l2_kb: u64,
    /// L2 line size in bytes.
    pub line: u32,
    /// Benchmark name.
    pub bench: String,
    /// Baseline IPC.
    pub base: f64,
    /// chash IPC.
    pub chash: f64,
    /// naive IPC.
    pub naive: f64,
}

/// Runs the Figure 3 sweep and returns the raw rows (memoized on `ctx`:
/// `claims` reuses the same sweep).
pub fn fig3_data(ctx: &RunCtx) -> Vec<Fig3Row> {
    if let Some(rows) = ctx.fig3_rows.borrow().as_ref() {
        return rows.clone();
    }
    let mut requests = Vec::new();
    for &(l2_kb, line) in &FIG3_CONFIGS {
        for bench in Benchmark::ALL {
            for scheme in [Scheme::Base, Scheme::CHash, Scheme::Naive] {
                requests.push(ctx.request(SystemConfig::hpca03(scheme, l2_kb << 10, line), bench));
            }
        }
    }
    let results = ctx.sweep(&requests);
    let mut triples = results.chunks_exact(3);
    let mut rows = Vec::new();
    for &(l2_kb, line) in &FIG3_CONFIGS {
        for bench in Benchmark::ALL {
            let [base, chash, naive] = triples.next().expect("one triple per cell") else {
                unreachable!("chunks_exact(3)");
            };
            rows.push(Fig3Row {
                l2_kb,
                line,
                bench: bench.name().into(),
                base: base.ipc,
                chash: chash.ipc,
                naive: naive.ipc,
            });
        }
    }
    *ctx.fig3_rows.borrow_mut() = Some(rows.clone());
    rows
}

fn fig3_body(ctx: &RunCtx) -> String {
    let rows = fig3_data(ctx);
    let mut body = String::new();
    for &(l2_kb, line) in &FIG3_CONFIGS {
        let mut t = Table::new(vec![
            "bench".into(),
            "base IPC".into(),
            "chash IPC".into(),
            "naive IPC".into(),
            "chash/base".into(),
            "naive/base".into(),
        ]);
        for r in rows.iter().filter(|r| r.l2_kb == l2_kb && r.line == line) {
            t.row(vec![
                r.bench.clone(),
                f3(r.base),
                f3(r.chash),
                f3(r.naive),
                f3(r.chash / r.base),
                f3(r.naive / r.base),
            ]);
        }
        body.push_str(&format!(
            "({} KB L2, {} B lines)\n{}\n",
            l2_kb,
            line,
            t.render()
        ));
    }
    body
}

fn fig3_json(rows: &[Fig3Row]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|r| {
                let mut o = JsonValue::obj();
                o.push("l2_kb", r.l2_kb);
                o.push("line", r.line);
                o.push("bench", r.bench.as_str());
                o.push("base", r.base);
                o.push("chash", r.chash);
                o.push("naive", r.naive);
                o
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Figure 4: L2 data miss rates (cache pollution)
// ---------------------------------------------------------------------

/// One Figure 4 measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// L2 capacity in KB.
    pub l2_kb: u64,
    /// Benchmark name.
    pub bench: String,
    /// Baseline L2 data miss rate.
    pub base: f64,
    /// chash L2 data miss rate.
    pub chash: f64,
}

/// Runs the Figure 4 sweep.
pub fn fig4_data(ctx: &RunCtx) -> Vec<Fig4Row> {
    let mut requests = Vec::new();
    for &l2_kb in &[256u64, 4096] {
        for bench in Benchmark::ALL {
            for scheme in [Scheme::Base, Scheme::CHash] {
                requests.push(ctx.request(SystemConfig::hpca03(scheme, l2_kb << 10, 64), bench));
            }
        }
    }
    let results = ctx.sweep(&requests);
    let mut pairs = results.chunks_exact(2);
    let mut rows = Vec::new();
    for &l2_kb in &[256u64, 4096] {
        for bench in Benchmark::ALL {
            let [base, chash] = pairs.next().expect("one pair per cell") else {
                unreachable!("chunks_exact(2)");
            };
            rows.push(Fig4Row {
                l2_kb,
                bench: bench.name().into(),
                base: base.l2_data_miss_rate,
                chash: chash.l2_data_miss_rate,
            });
        }
    }
    rows
}

fn fig4_body(ctx: &RunCtx) -> String {
    let rows = fig4_data(ctx);
    let mut t = Table::new(vec![
        "bench".into(),
        "base-256K".into(),
        "chash-256K".into(),
        "base-4M".into(),
        "chash-4M".into(),
    ]);
    for bench in Benchmark::ALL {
        let find = |kb: u64| {
            rows.iter()
                .find(|r| r.l2_kb == kb && r.bench == bench.name())
                .expect("row present")
        };
        let small = find(256);
        let big = find(4096);
        t.row(vec![
            bench.name().into(),
            pct(small.base),
            pct(small.chash),
            pct(big.base),
            pct(big.chash),
        ]);
    }
    t.render()
}

fn fig4_json(rows: &[Fig4Row]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|r| {
                let mut o = JsonValue::obj();
                o.push("l2_kb", r.l2_kb);
                o.push("bench", r.bench.as_str());
                o.push("base", r.base);
                o.push("chash", r.chash);
                o
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Figure 5: extra memory accesses and bandwidth pollution
// ---------------------------------------------------------------------

/// One Figure 5 measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark name.
    pub bench: String,
    /// Extra loads per L2 miss, chash.
    pub chash_extra: f64,
    /// Extra loads per L2 miss, naive.
    pub naive_extra: f64,
    /// Bus bytes, baseline.
    pub base_bytes: u64,
    /// Bus bytes, chash.
    pub chash_bytes: u64,
    /// Bus bytes, naive.
    pub naive_bytes: u64,
}

/// Runs the Figure 5 sweep (1 MB L2, 64-B lines).
pub fn fig5_data(ctx: &RunCtx) -> Vec<Fig5Row> {
    let mut requests = Vec::new();
    for bench in Benchmark::ALL {
        for scheme in [Scheme::Base, Scheme::CHash, Scheme::Naive] {
            requests.push(ctx.request(SystemConfig::hpca03(scheme, 1 << 20, 64), bench));
        }
    }
    let results = ctx.sweep(&requests);
    results
        .chunks_exact(3)
        .zip(Benchmark::ALL)
        .map(|(triple, bench)| {
            let [base, chash, naive] = triple else {
                unreachable!("chunks_exact(3)");
            };
            Fig5Row {
                bench: bench.name().into(),
                chash_extra: chash.extra_loads_per_miss,
                naive_extra: naive.extra_loads_per_miss,
                base_bytes: base.bus_bytes,
                chash_bytes: chash.bus_bytes,
                naive_bytes: naive.bus_bytes,
            }
        })
        .collect()
}

fn fig5_body(ctx: &RunCtx) -> String {
    let rows = fig5_data(ctx);
    let mut a = Table::new(vec![
        "bench".into(),
        "chash extra/miss".into(),
        "naive extra/miss".into(),
    ]);
    let mut b = Table::new(vec![
        "bench".into(),
        "base".into(),
        "chash".into(),
        "naive".into(),
    ]);
    for r in &rows {
        a.row(vec![r.bench.clone(), f2(r.chash_extra), f2(r.naive_extra)]);
        // Normalizing needs meaningful baseline traffic; benchmarks whose
        // data fits the cache move almost nothing and get a dash.
        if r.base_bytes < 64 * 1000 {
            b.row(vec![r.bench.clone(), "-".into(), "-".into(), "-".into()]);
        } else {
            let base = r.base_bytes as f64;
            b.row(vec![
                r.bench.clone(),
                f2(1.0),
                f2(r.chash_bytes as f64 / base),
                f2(r.naive_bytes as f64 / base),
            ]);
        }
    }
    format!(
        "(a) additional blocks loaded from memory per L2 miss (1 MB, 64 B):\n{}\n\
         (b) memory bandwidth usage normalized to base:\n{}",
        a.render(),
        b.render()
    )
}

fn fig5_json(rows: &[Fig5Row]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|r| {
                let mut o = JsonValue::obj();
                o.push("bench", r.bench.as_str());
                o.push("chash_extra", r.chash_extra);
                o.push("naive_extra", r.naive_extra);
                o.push("base_bytes", r.base_bytes);
                o.push("chash_bytes", r.chash_bytes);
                o.push("naive_bytes", r.naive_bytes);
                o
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Figure 6: hash throughput sweep
// ---------------------------------------------------------------------

/// One Figure 6 series point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: String,
    /// IPC at each swept throughput, in `THROUGHPUTS` order.
    pub ipc: Vec<f64>,
}

/// The swept hash throughputs in GB/s (Figure 6).
pub const FIG6_THROUGHPUTS: [f64; 4] = [6.4, 3.2, 1.6, 0.8];

/// Runs the Figure 6 sweep (chash, 1 MB L2, 64-B lines).
pub fn fig6_data(ctx: &RunCtx) -> Vec<Fig6Row> {
    let mut requests = Vec::new();
    for bench in Benchmark::ALL {
        for &gbps in &FIG6_THROUGHPUTS {
            let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64)
                .with_hash_throughput(Throughput::gbps(gbps));
            requests.push(ctx.request(cfg, bench));
        }
    }
    let results = ctx.sweep(&requests);
    results
        .chunks_exact(FIG6_THROUGHPUTS.len())
        .zip(Benchmark::ALL)
        .map(|(series, bench)| Fig6Row {
            bench: bench.name().into(),
            ipc: series.iter().map(|r| r.ipc).collect(),
        })
        .collect()
}

fn fig6_body(ctx: &RunCtx) -> String {
    let rows = fig6_data(ctx);
    let mut t = Table::new(
        std::iter::once("bench".to_string())
            .chain(FIG6_THROUGHPUTS.iter().map(|g| format!("{g} GB/s")))
            .collect(),
    );
    for r in &rows {
        t.row(
            std::iter::once(r.bench.clone())
                .chain(r.ipc.iter().map(|&x| f3(x)))
                .collect(),
        );
    }
    t.render()
}

// ---------------------------------------------------------------------
// Figure 7: buffer size sweep
// ---------------------------------------------------------------------

/// One Figure 7 series point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: String,
    /// IPC at each swept buffer size, in `FIG7_BUFFERS` order.
    pub ipc: Vec<f64>,
}

/// The swept buffer sizes (Figure 7).
pub const FIG7_BUFFERS: [u32; 5] = [2, 4, 8, 16, 32];

/// Runs the Figure 7 sweep (chash, 1 MB L2, 64-B lines).
pub fn fig7_data(ctx: &RunCtx) -> Vec<Fig7Row> {
    let mut requests = Vec::new();
    for bench in Benchmark::ALL {
        for &entries in &FIG7_BUFFERS {
            let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64).with_buffer_entries(entries);
            requests.push(ctx.request(cfg, bench));
        }
    }
    let results = ctx.sweep(&requests);
    results
        .chunks_exact(FIG7_BUFFERS.len())
        .zip(Benchmark::ALL)
        .map(|(series, bench)| Fig7Row {
            bench: bench.name().into(),
            ipc: series.iter().map(|r| r.ipc).collect(),
        })
        .collect()
}

fn fig7_body(ctx: &RunCtx) -> String {
    let rows = fig7_data(ctx);
    let mut t = Table::new(
        std::iter::once("bench".to_string())
            .chain(FIG7_BUFFERS.iter().map(|b| format!("{b} entries")))
            .collect(),
    );
    for r in &rows {
        t.row(
            std::iter::once(r.bench.clone())
                .chain(r.ipc.iter().map(|&x| f3(x)))
                .collect(),
        );
    }
    t.render()
}

/// Shared JSON shape for the per-benchmark IPC series of Figures 6/7.
fn series_json(rows: &[(String, Vec<f64>)]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|(bench, ipc)| {
                let mut o = JsonValue::obj();
                o.push("bench", bench.as_str());
                o.push(
                    "ipc",
                    ipc.iter().map(|&x| JsonValue::Float(x)).collect::<Vec<_>>(),
                );
                o
            })
            .collect(),
    )
}

fn fig6_json(rows: &[Fig6Row]) -> JsonValue {
    series_json(
        &rows
            .iter()
            .map(|r| (r.bench.clone(), r.ipc.clone()))
            .collect::<Vec<_>>(),
    )
}

fn fig7_json(rows: &[Fig7Row]) -> JsonValue {
    series_json(
        &rows
            .iter()
            .map(|r| (r.bench.clone(), r.ipc.clone()))
            .collect::<Vec<_>>(),
    )
}

// ---------------------------------------------------------------------
// Hash-unit sweep (beyond the paper): md5 / sha1 / sha256
// ---------------------------------------------------------------------

/// One hash-unit sweep series point.
#[derive(Debug, Clone, PartialEq)]
pub struct HashesRow {
    /// Benchmark name.
    pub bench: String,
    /// IPC for each hash unit, in [`HashAlgo::ALL`] order.
    pub ipc: Vec<f64>,
}

/// Runs the hash-unit sweep: chash at 1 MB / 64 B with each unit's
/// modeled pipeline throughput (a Figure 6 section reading — the unit
/// only matters through its GB/s, so slower primitives land on the
/// same curve).
pub fn hashes_data(ctx: &RunCtx) -> Vec<HashesRow> {
    let mut requests = Vec::new();
    for bench in Benchmark::ALL {
        for algo in HashAlgo::ALL {
            let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64)
                .with_hash_throughput(Throughput::gbps(algo.modeled_throughput_gbps()));
            requests.push(ctx.request(cfg, bench));
        }
    }
    let results = ctx.sweep(&requests);
    results
        .chunks_exact(HashAlgo::ALL.len())
        .zip(Benchmark::ALL)
        .map(|(series, bench)| HashesRow {
            bench: bench.name().into(),
            ipc: series.iter().map(|r| r.ipc).collect(),
        })
        .collect()
}

fn hashes_body(ctx: &RunCtx) -> String {
    let rows = hashes_data(ctx);
    let mut t = Table::new(
        std::iter::once("bench".to_string())
            .chain(
                HashAlgo::ALL
                    .iter()
                    .map(|a| format!("{} ({} GB/s)", a.label(), a.modeled_throughput_gbps())),
            )
            .collect(),
    );
    for r in &rows {
        t.row(
            std::iter::once(r.bench.clone())
                .chain(r.ipc.iter().map(|&x| f3(x)))
                .collect(),
        );
    }
    t.render()
}

fn hashes_json(rows: &[HashesRow]) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push(
        "units",
        HashAlgo::ALL
            .iter()
            .map(|a| JsonValue::from(a.label()))
            .collect::<Vec<_>>(),
    );
    doc.push(
        "series",
        series_json(
            &rows
                .iter()
                .map(|r| (r.bench.clone(), r.ipc.clone()))
                .collect::<Vec<_>>(),
        ),
    );
    doc
}

// ---------------------------------------------------------------------
// Figure 8: memory-overhead-reducing schemes
// ---------------------------------------------------------------------

/// One Figure 8 measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: String,
    /// Baseline IPC (64-B lines).
    pub base64: f64,
    /// chash with 64-B lines/chunks.
    pub c64: f64,
    /// chash with 128-B lines/chunks.
    pub c128: f64,
    /// mhash: two 64-B blocks per chunk.
    pub m64: f64,
    /// ihash: two 64-B blocks per chunk, incremental MAC.
    pub i64: f64,
}

/// Runs the Figure 8 sweep (1 MB L2).
pub fn fig8_data(ctx: &RunCtx) -> Vec<Fig8Row> {
    let configs = [
        SystemConfig::hpca03(Scheme::Base, 1 << 20, 64),
        SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64),
        SystemConfig::hpca03(Scheme::CHash, 1 << 20, 128),
        SystemConfig::hpca03(Scheme::MHash, 1 << 20, 64),
        SystemConfig::hpca03(Scheme::IHash, 1 << 20, 64),
    ];
    let mut requests = Vec::new();
    for bench in Benchmark::ALL {
        for cfg in configs {
            requests.push(ctx.request(cfg, bench));
        }
    }
    let results = ctx.sweep(&requests);
    results
        .chunks_exact(configs.len())
        .zip(Benchmark::ALL)
        .map(|(runs, bench)| {
            let [base64, c64, c128, m64, i64] = runs else {
                unreachable!("chunks_exact(5)");
            };
            Fig8Row {
                bench: bench.name().into(),
                base64: base64.ipc,
                c64: c64.ipc,
                c128: c128.ipc,
                m64: m64.ipc,
                i64: i64.ipc,
            }
        })
        .collect()
}

fn fig8_body(ctx: &RunCtx) -> String {
    let rows = fig8_data(ctx);
    let mut t = Table::new(vec![
        "bench".into(),
        "c-64B".into(),
        "c-128B".into(),
        "m-64B".into(),
        "i-64B".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.bench.clone(),
            f3(r.c64),
            f3(r.c128),
            f3(r.m64),
            f3(r.i64),
        ]);
    }
    let overhead64 = TreeLayout::new(256 << 20, 64, 64).overhead();
    let overhead128 = TreeLayout::new(256 << 20, 128, 64).overhead();
    format!(
        "{}\nmemory overhead: c-64B {} — c-128B / m-64B / i-64B {}\n",
        t.render(),
        pct(overhead64),
        pct(overhead128),
    )
}

fn fig8_json(rows: &[Fig8Row]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|r| {
                let mut o = JsonValue::obj();
                o.push("bench", r.bench.as_str());
                o.push("base64", r.base64);
                o.push("c64", r.c64);
                o.push("c128", r.c128);
                o.push("m64", r.m64);
                o.push("i64", r.i64);
                o
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Headline claims
// ---------------------------------------------------------------------

/// The paper's headline numbers, computed from the Figure 3 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Claims {
    /// Worst chash overhead across benchmarks at 256 KB / 64 B.
    pub worst_chash_overhead_small: f64,
    /// The benchmark exhibiting it.
    pub worst_bench_small: String,
    /// Worst chash overhead at 4 MB (any line size).
    pub worst_chash_overhead_4mb: f64,
    /// Worst naive slowdown factor anywhere.
    pub worst_naive_slowdown: f64,
    /// The benchmark exhibiting it.
    pub worst_naive_bench: String,
}

/// Computes the headline claims from Figure 3 rows.
pub fn claims_from(rows: &[Fig3Row]) -> Claims {
    let overhead = |r: &Fig3Row, ipc: f64| 1.0 - ipc / r.base;
    let small = rows
        .iter()
        .filter(|r| r.l2_kb == 256 && r.line == 64)
        .max_by(|a, b| {
            overhead(a, a.chash)
                .partial_cmp(&overhead(b, b.chash))
                .expect("finite")
        })
        .expect("rows present");
    let big = rows
        .iter()
        .filter(|r| r.l2_kb == 4096)
        .map(|r| overhead(r, r.chash))
        .fold(f64::MIN, f64::max);
    let naive = rows
        .iter()
        .max_by(|a, b| {
            (a.base / a.naive)
                .partial_cmp(&(b.base / b.naive))
                .expect("finite")
        })
        .expect("rows present");
    Claims {
        worst_chash_overhead_small: overhead(small, small.chash),
        worst_bench_small: small.bench.clone(),
        worst_chash_overhead_4mb: big,
        worst_naive_slowdown: naive.base / naive.naive,
        worst_naive_bench: naive.bench.clone(),
    }
}

fn claims_body(ctx: &RunCtx) -> String {
    let c = claims_from(&fig3_data(ctx));
    format!(
        "worst chash overhead at 256 KB / 64 B : {} ({})\n\
         worst chash overhead at 4 MB         : {}\n\
         worst naive slowdown                 : {:.1}x ({})\n\n\
         paper: chash worst case ~20-25% on the small cache (mcf-like),\n\
         under 5% with a 4 MB L2; naive up to ~10x on the streaming\n\
         benchmarks and not rescued by bigger caches.\n",
        pct(c.worst_chash_overhead_small),
        c.worst_bench_small,
        pct(c.worst_chash_overhead_4mb),
        c.worst_naive_slowdown,
        c.worst_naive_bench,
    )
}

fn claims_json(c: &Claims) -> JsonValue {
    let mut o = JsonValue::obj();
    o.push("worst_chash_overhead_small", c.worst_chash_overhead_small);
    o.push("worst_bench_small", c.worst_bench_small.as_str());
    o.push("worst_chash_overhead_4mb", c.worst_chash_overhead_4mb);
    o.push("worst_naive_slowdown", c.worst_naive_slowdown);
    o.push("worst_naive_bench", c.worst_naive_bench.as_str());
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(warmup: u64, measure: u64) -> RunCtx {
        RunCtx::new(ExperimentConfig {
            warmup,
            measure,
            seed: 42,
        })
    }

    #[test]
    fn registry_is_complete_and_ordered() {
        let ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            [
                "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "hashes",
                "claims"
            ]
        );
        assert!(find_experiment("fig5").is_some());
        assert!(find_experiment("fig99").is_none());
        for e in EXPERIMENTS {
            let descriptive = matches!(e.id, "table1" | "fig1" | "fig2");
            assert_eq!(e.has_data(), !descriptive, "{}", e.id);
        }
    }

    #[test]
    fn table1_and_diagrams_render() {
        let ctx = ctx(0, 0);
        let table1 = find_experiment("table1").unwrap().render(&ctx);
        assert!(table1.body.contains("1 GHz"));
        assert!(find_experiment("fig1")
            .unwrap()
            .render(&ctx)
            .body
            .contains("secure root"));
        let f2fig = find_experiment("fig2").unwrap().render(&ctx);
        assert!(f2fig.body.contains("READ BUFFER"));
        assert!(f2fig.body.contains("data returned"));
        assert!(format!("{table1}").contains("== table1"));
    }

    #[test]
    fn quick_fig4_shows_pollution_shrinking_with_cache_size() {
        // The quick window is too noisy for per-benchmark claims; use a
        // medium window and compare the averaged relative inflation.
        let rows = fig4_data(&ctx(50_000, 250_000));
        assert_eq!(rows.len(), 18);
        // Relative pollution (chash / base miss rate) averaged over the
        // benchmarks with meaningful traffic must shrink with cache size.
        let avg_rel = |kb: u64| {
            let sel: Vec<_> = rows
                .iter()
                .filter(|r| r.l2_kb == kb && r.base > 0.005)
                .collect();
            assert!(!sel.is_empty());
            sel.iter().map(|r| r.chash / r.base).sum::<f64>() / sel.len() as f64
        };
        let small = avg_rel(256);
        let big = avg_rel(4096);
        assert!(small > 1.1, "pollution must be visible at 256 KB: {small}");
        assert!(small > big, "{small} vs {big}");
    }

    #[test]
    fn quick_fig5_naive_extra_loads_near_tree_depth() {
        let ctx = RunCtx::new(ExperimentConfig::quick());
        let rows = fig5_data(&ctx);
        let depth = TreeLayout::new(256 << 20, 64, 64).levels() as f64;
        // Benchmarks that still miss at 1 MB and are read-dominated (the
        // ones whose naive walks are not skipped by whole-line store
        // allocations): the extra loads per miss sit near the tree depth.
        for name in ["mcf", "art"] {
            let r = rows.iter().find(|r| r.bench == name).expect("row present");
            assert!(
                r.naive_extra > depth * 0.4 && r.naive_extra < depth * 2.5,
                "{}: naive extra {} vs depth {}",
                r.bench,
                r.naive_extra,
                depth
            );
            assert!(
                r.chash_extra < r.naive_extra / 2.0,
                "{}: chash {} vs naive {}",
                r.bench,
                r.chash_extra,
                r.naive_extra
            );
        }
        // Caching never fetches more than naive for any benchmark that
        // misses at all.
        for r in rows.iter().filter(|r| r.naive_extra > 0.0) {
            assert!(r.chash_extra <= r.naive_extra, "{}", r.bench);
        }
    }

    #[test]
    fn fig3_rows_are_memoized_on_the_context() {
        let ctx = ctx(1_000, 4_000).with_jobs(2);
        let first = fig3_data(&ctx);
        assert!(ctx.fig3_rows.borrow().is_some());
        let second = fig3_data(&ctx);
        assert_eq!(first, second);
    }

    #[test]
    fn claims_math() {
        let rows = vec![
            Fig3Row {
                l2_kb: 256,
                line: 64,
                bench: "a".into(),
                base: 1.0,
                chash: 0.8,
                naive: 0.2,
            },
            Fig3Row {
                l2_kb: 4096,
                line: 64,
                bench: "a".into(),
                base: 1.0,
                chash: 0.99,
                naive: 0.2,
            },
            Fig3Row {
                l2_kb: 256,
                line: 64,
                bench: "b".into(),
                base: 2.0,
                chash: 1.9,
                naive: 0.25,
            },
            Fig3Row {
                l2_kb: 4096,
                line: 64,
                bench: "b".into(),
                base: 2.0,
                chash: 1.96,
                naive: 0.3,
            },
        ];
        let c = claims_from(&rows);
        assert_eq!(c.worst_bench_small, "a");
        assert!((c.worst_chash_overhead_small - 0.2).abs() < 1e-9);
        assert!((c.worst_chash_overhead_4mb - 0.02).abs() < 1e-6);
        assert_eq!(c.worst_naive_bench, "b");
        assert!((c.worst_naive_slowdown - 8.0).abs() < 1e-9);
    }
}
