//! Small argument-parsing helpers shared by the `figures` and `mivsim`
//! binaries (kept dependency-free; the workspace carries no CLI crate).

use miv_cache::ReplacementPolicy;
use miv_core::timing::Scheme;
use miv_trace::{Benchmark, Profile};

/// Options shared by every campaign-style `mivsim` subcommand
/// (`attack`, `profile`, `serve`): one parser instead of three
/// hand-rolled copies of the same six flags.
///
/// The embedding parser calls [`accept`](Self::accept) for each
/// argument; a `true` return means the flag (and its value, if any)
/// was consumed. Flags outside [`FLAGS`](Self::FLAGS) are left to the
/// caller, so subcommand-specific options coexist untouched.
///
/// # Examples
///
/// ```
/// use miv_sim::cli::CommonOpts;
///
/// let mut o = CommonOpts::new();
/// assert!(o.accept("--quick", |_| unreachable!()).unwrap());
/// assert!(o.accept("--seed", |_| Ok("7".into())).unwrap());
/// assert!(!o.accept("--scheme", |_| unreachable!()).unwrap());
/// assert!(o.quick);
/// assert_eq!(o.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonOpts {
    /// CI-sized run (`--quick`).
    pub quick: bool,
    /// Master seed (`--seed`, default 42).
    pub seed: u64,
    /// Worker threads (`--jobs`, default 0 = one per core).
    pub jobs: usize,
    /// Emit JSON instead of a table (`--json`).
    pub json: bool,
    /// Write the subcommand's JSON document here (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Write the event stream as JSONL here (`--trace-events`).
    pub trace_events: Option<String>,
}

impl Default for CommonOpts {
    fn default() -> Self {
        CommonOpts::new()
    }
}

impl CommonOpts {
    /// The exact flag set this parser owns — the same six flags the
    /// subcommands hand-parsed before the extraction.
    pub const FLAGS: [&'static str; 6] = [
        "--quick",
        "--seed",
        "--jobs",
        "--json",
        "--metrics-out",
        "--trace-events",
    ];

    /// Defaults matching the historical subcommand parsers: seed 42,
    /// jobs 0 (one worker per core), everything else off.
    pub fn new() -> Self {
        CommonOpts {
            quick: false,
            seed: 42,
            jobs: 0,
            json: false,
            metrics_out: None,
            trace_events: None,
        }
    }

    /// Tries to consume `arg`. `next(flag)` yields the following
    /// argument for value-taking flags (and errors when it is
    /// missing). Returns `Ok(true)` when the flag was one of
    /// [`FLAGS`](Self::FLAGS), `Ok(false)` when it belongs to the
    /// caller, and `Err` on a malformed value.
    pub fn accept(
        &mut self,
        arg: &str,
        mut next: impl FnMut(&str) -> Result<String, String>,
    ) -> Result<bool, String> {
        match arg {
            "--quick" => self.quick = true,
            "--seed" => {
                self.seed = next("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--jobs" => {
                self.jobs = next("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs".to_string())?
            }
            "--json" => self.json = true,
            "--metrics-out" => self.metrics_out = Some(next("--metrics-out")?),
            "--trace-events" => self.trace_events = Some(next("--trace-events")?),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Parses a size with an optional `K`/`M`/`G` suffix (powers of two).
///
/// # Examples
///
/// ```
/// use miv_sim::cli::parse_size;
///
/// assert_eq!(parse_size("256K"), Some(256 << 10));
/// assert_eq!(parse_size("1m"), Some(1 << 20));
/// assert_eq!(parse_size("4096"), Some(4096));
/// assert_eq!(parse_size("x"), None);
/// assert_eq!(parse_size("999999999999G"), None, "overflow rejected");
/// ```
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1u64 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().and_then(|n| n.checked_mul(mult))
}

/// Parses a scheme by its paper label (`base`, `naive`, `chash`, …).
pub fn parse_scheme(s: &str) -> Option<Scheme> {
    Scheme::ALL.into_iter().find(|sch| sch.label() == s)
}

/// Parses a benchmark by its SPEC name.
pub fn parse_bench(s: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.name() == s)
}

/// Parses a replacement policy by label.
pub fn parse_policy(s: &str) -> Option<ReplacementPolicy> {
    ReplacementPolicy::ALL.into_iter().find(|p| p.label() == s)
}

/// Parses a custom workload specification of the form
/// `key=value,key=value,…` over a cache-friendly template.
///
/// Keys: `ws`, `hot`, `mid` (sizes with K/M/G suffix); `hot-frac`,
/// `far-frac`, `mem`, `write`, `chase`, `stream`, `branch`, `mispredict`
/// (probabilities); `run` (words).
///
/// # Examples
///
/// ```
/// use miv_sim::cli::parse_custom_profile;
///
/// let p = parse_custom_profile("ws=8M,hot=64K,mem=0.4,run=512").unwrap();
/// assert_eq!(p.working_set, 8 << 20);
/// assert_eq!(p.run_words, 512);
/// ```
pub fn parse_custom_profile(spec: &str) -> Result<Profile, String> {
    let mut p = Profile::cache_friendly("custom", 8 << 20);
    p.mid_set = p.working_set;
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {part}"))?;
        let size = || parse_size(value).ok_or_else(|| format!("bad size for {key}: {value}"));
        let frac = || {
            value
                .parse::<f64>()
                .map_err(|_| format!("bad fraction for {key}: {value}"))
        };
        match key {
            "ws" => p.working_set = size()?,
            "hot" => p.hot_set = size()?,
            "mid" => p.mid_set = size()?,
            "hot-frac" => p.hot_fraction = frac()?,
            "far-frac" => p.far_fraction = frac()?,
            "mem" => p.mem_fraction = frac()?,
            "write" => p.write_fraction = frac()?,
            "chase" => p.pointer_chase = frac()?,
            "stream" => p.streaming_stores = frac()?,
            "branch" => p.branch_fraction = frac()?,
            "mispredict" => p.mispredict_rate = frac()?,
            "run" => {
                p.run_words = value
                    .parse()
                    .map_err(|_| format!("bad run length: {value}"))?
            }
            other => return Err(format!("unknown profile key {other}")),
        }
    }
    // Keep the regions nested if only the working set was given.
    if p.mid_set > p.working_set {
        p.mid_set = p.working_set;
    }
    if p.hot_set > p.mid_set {
        p.hot_set = p.mid_set / 4;
    }
    p.try_validate()?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_opts_flag_set_is_unchanged() {
        // The exact set `attack`, `profile` (and now `serve`) each
        // hand-parsed before the extraction; parity is the acceptance
        // criterion for sharing one parser.
        let legacy = [
            "--quick",
            "--seed",
            "--jobs",
            "--json",
            "--metrics-out",
            "--trace-events",
        ];
        assert_eq!(CommonOpts::FLAGS, legacy);
        let mut o = CommonOpts::new();
        for flag in legacy {
            assert!(
                o.accept(flag, |_| Ok("7".into())).unwrap(),
                "{flag} must be accepted"
            );
        }
        // Subcommand-specific flags stay with the caller.
        for flag in [
            "--scheme",
            "--l2",
            "--bench",
            "--folded",
            "--drift-check",
            "--shards",
            "--requests",
            "--tamper",
            "--sample-interval",
        ] {
            assert!(
                !o.accept(flag, |_| Ok("x".into())).unwrap(),
                "{flag} must be left to the subcommand"
            );
        }
    }

    #[test]
    fn common_opts_values_and_errors() {
        let mut o = CommonOpts::new();
        assert_eq!((o.quick, o.seed, o.jobs, o.json), (false, 42, 0, false));
        o.accept("--seed", |_| Ok("9".into())).unwrap();
        o.accept("--jobs", |_| Ok("3".into())).unwrap();
        o.accept("--metrics-out", |_| Ok("m.json".into())).unwrap();
        o.accept("--trace-events", |_| Ok("e.jsonl".into()))
            .unwrap();
        o.accept("--quick", |_| unreachable!()).unwrap();
        o.accept("--json", |_| unreachable!()).unwrap();
        assert_eq!(o.seed, 9);
        assert_eq!(o.jobs, 3);
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(o.trace_events.as_deref(), Some("e.jsonl"));
        assert!(o.quick && o.json);
        // Malformed values and missing values surface as errors.
        assert!(o.accept("--seed", |_| Ok("x".into())).is_err());
        assert!(o
            .accept("--jobs", |f| Err(format!("{f} needs a value")))
            .is_err());
    }

    #[test]
    fn sizes() {
        assert_eq!(parse_size("0"), Some(0));
        assert_eq!(parse_size("64"), Some(64));
        assert_eq!(parse_size("256k"), Some(256 << 10));
        assert_eq!(parse_size("256K"), Some(256 << 10));
        assert_eq!(parse_size(" 2M "), Some(2 << 20), "whitespace is trimmed");
        assert_eq!(parse_size("1G"), Some(1 << 30));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("K"), None);
        assert_eq!(parse_size("12Q"), None);
        assert_eq!(parse_size("999999999999G"), None, "suffix overflow");
        assert_eq!(parse_size("18446744073709551615"), Some(u64::MAX));
        assert_eq!(parse_size("17179869184G"), None, "just past u64::MAX");
    }

    #[test]
    fn custom_profiles() {
        let p = parse_custom_profile("ws=2M,hot=128K,mem=0.45,write=0.2,run=64,chase=0.3").unwrap();
        assert_eq!(p.working_set, 2 << 20);
        assert_eq!(p.hot_set, 128 << 10);
        assert_eq!(p.mem_fraction, 0.45);
        assert_eq!(p.pointer_chase, 0.3);
        assert!(parse_custom_profile("nope=1").is_err());
        assert!(parse_custom_profile("ws").is_err());
        assert!(
            parse_custom_profile("ws=2K").is_err(),
            "tiny working set rejected"
        );
        assert!(
            parse_custom_profile("mem=2.0").is_err(),
            "out-of-range rejected"
        );
        // Region auto-nesting.
        let p = parse_custom_profile("ws=1M").unwrap();
        assert!(p.hot_set <= p.mid_set && p.mid_set <= p.working_set);
    }

    #[test]
    fn policies() {
        use miv_cache::ReplacementPolicy;
        assert_eq!(parse_policy("lru"), Some(ReplacementPolicy::Lru));
        assert_eq!(parse_policy("fifo"), Some(ReplacementPolicy::Fifo));
        assert_eq!(parse_policy("nope"), None);
    }

    #[test]
    fn schemes_and_benches() {
        assert_eq!(parse_scheme("chash"), Some(Scheme::CHash));
        assert_eq!(parse_scheme("base"), Some(Scheme::Base));
        assert_eq!(parse_scheme("CHASH"), None);
        assert_eq!(parse_bench("mcf"), Some(Benchmark::Mcf));
        assert_eq!(parse_bench("nope"), None);
        for s in Scheme::ALL {
            assert_eq!(parse_scheme(s.label()), Some(s));
        }
        for b in Benchmark::ALL {
            assert_eq!(parse_bench(b.name()), Some(b));
        }
    }
}
