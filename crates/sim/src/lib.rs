//! Full-system simulator and experiment harness for the HPCA'03
//! evaluation.
//!
//! Wires the substrate crates into the paper's Table 1 machine:
//!
//! ```text
//!  TraceGenerator ─▶ Core (4-wide OoO, 128 RUU, 64 LSQ)
//!                      │ loads/stores
//!                      ▼
//!                    L1 D-cache (64 KB, 2-way, 32 B)
//!                      │ misses / write-backs
//!                      ▼
//!                    L2Controller = unified L2 (4-way) + hash-tree
//!                      │            checker (scheme, hash unit, buffers)
//!                      ▼
//!                    memory bus (200 MHz × 8 B) + DRAM (80 cycles)
//! ```
//!
//! [`experiments`] regenerates every table and figure of §6; the
//! `figures` binary prints them (`cargo run -p miv-sim --release --bin
//! figures -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod cli;
pub mod config;
pub mod experiments;
pub mod hierarchy;
pub mod profile;
pub mod report;
pub mod serve;
pub mod store;
pub mod sweep;
pub mod system;
pub mod telemetry;

pub use config::SystemConfig;
pub use hierarchy::Hierarchy;
pub use sweep::{RunOutcome, RunRequest, SweepRunner, Workload};
pub use system::{RunResult, System};
pub use telemetry::{Sample, Telemetry, TelemetrySnapshot};
