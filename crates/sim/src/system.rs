//! The assembled machine and measurement runs.

use miv_cpu::Core;
use miv_trace::{Profile, TraceGenerator};
use serde::Serialize;

use crate::config::SystemConfig;
use crate::hierarchy::Hierarchy;

/// Measured results of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Scheme label (`base`, `naive`, `chash`, `mhash`, `ihash`).
    pub scheme: String,
    /// Workload name.
    pub benchmark: String,
    /// Instructions measured (after warm-up).
    pub instructions: u64,
    /// Cycles elapsed in the measurement window.
    pub cycles: u64,
    /// Instructions per cycle — the paper's headline metric.
    pub ipc: f64,
    /// L2 miss rate for program data accesses (Figure 4).
    pub l2_data_miss_rate: f64,
    /// Demand L2 data misses.
    pub l2_data_misses: u64,
    /// L2 hit rate for hash-line accesses (1.0 when the scheme never
    /// touches hashes).
    pub hash_hit_rate: f64,
    /// Memory blocks loaded beyond demand fetches, per L2 data miss
    /// (Figure 5a).
    pub extra_loads_per_miss: f64,
    /// Total bytes moved on the memory bus.
    pub bus_bytes: u64,
    /// Bytes moved for hash-tree traffic.
    pub hash_bytes: u64,
    /// Memory-bus data bandwidth used, in GB/s at the 1 GHz clock.
    pub bandwidth_gbps: f64,
    /// Fraction of L2 lines holding hashes at the end of the run.
    pub l2_hash_occupancy: f64,
    /// Cycles demand fetches waited for a read-buffer entry.
    pub read_buffer_wait: u64,
}

impl RunResult {
    /// Slowdown of this run relative to a baseline IPC.
    pub fn slowdown_vs(&self, base_ipc: f64) -> f64 {
        if self.ipc == 0.0 {
            f64::INFINITY
        } else {
            base_ipc / self.ipc
        }
    }

    /// Normalized IPC relative to a baseline (1.0 = no overhead).
    pub fn normalized_ipc(&self, base_ipc: f64) -> f64 {
        if base_ipc == 0.0 {
            0.0
        } else {
            self.ipc / base_ipc
        }
    }
}

/// A configured machine attached to one workload.
///
/// # Examples
///
/// ```
/// use miv_core::Scheme;
/// use miv_sim::{System, SystemConfig};
/// use miv_trace::Benchmark;
///
/// let cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
/// let mut sys = System::for_benchmark(cfg, Benchmark::Gzip, 1);
/// let result = sys.run(10_000, 50_000);
/// assert!(result.ipc > 0.0);
/// ```
#[derive(Debug)]
pub struct System {
    core: Core<Hierarchy>,
    trace: TraceGenerator,
    benchmark: String,
    scheme: String,
    prewarm_span: u64,
    prewarmed: bool,
}

impl System {
    /// Builds a machine running the given profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile's working set exceeds the checker's
    /// protected segment.
    pub fn new(config: SystemConfig, profile: Profile, seed: u64) -> Self {
        assert!(
            profile.working_set <= config.checker.protected_bytes,
            "working set larger than the protected segment"
        );
        let hierarchy = Hierarchy::new(&config);
        System {
            core: Core::new(config.core, hierarchy),
            trace: TraceGenerator::new(profile, seed),
            benchmark: profile.name.to_string(),
            scheme: config.checker.scheme.label().to_string(),
            // The capacity-interesting (mid) region is what must be
            // resident for steady state; the far region never fits.
            prewarm_span: profile.mid_set,
            prewarmed: false,
        }
    }

    /// Functional cache warm-up: touches the tail of the working set once
    /// so capacity behaviour (rather than compulsory misses over the slow
    /// stochastic coverage of the footprint) governs the measurement
    /// window. Bounded to a few multiples of the L2 so huge streaming
    /// footprints stay cheap. Timing state and statistics are discarded
    /// by the warm-up reset in [`run`](Self::run).
    fn prewarm(&mut self) {
        use miv_cpu::MemoryPort;
        let hierarchy = self.core.port_mut();
        let line = hierarchy.l1().config().line_bytes as u64;
        let l2_bytes = hierarchy.l2_capacity_bytes();
        let span = self.prewarm_span.min(4 * l2_bytes);
        let mut addr = 0;
        while addr < span {
            hierarchy.load(0, addr);
            addr += line;
        }
    }

    /// Builds a machine running one of the paper's benchmarks.
    pub fn for_benchmark(
        config: SystemConfig,
        benchmark: miv_trace::Benchmark,
        seed: u64,
    ) -> Self {
        Self::new(config, benchmark.profile(), seed)
    }

    /// Runs `warmup` instructions (statistics discarded), then `measure`
    /// instructions, returning the measured results.
    pub fn run(&mut self, warmup: u64, measure: u64) -> RunResult {
        if !self.prewarmed {
            self.prewarm();
            self.prewarmed = true;
        }
        if warmup > 0 {
            let trace = &mut self.trace;
            self.core.run(trace.take(warmup as usize));
        }
        self.core.port_mut().reset_stats();
        let trace = &mut self.trace;
        let stats = self.core.run(trace.take(measure as usize));

        let hierarchy = self.core.port();
        let l2 = hierarchy.l2().l2_stats();
        let checker = hierarchy.l2().stats();
        let bus = hierarchy.l2().bus_stats();
        let (occ_data, occ_hash) = hierarchy.l2().l2_occupancy();

        let data_misses = l2.data.misses();
        let extra = checker.extra_loads();
        RunResult {
            scheme: self.scheme.clone(),
            benchmark: self.benchmark.clone(),
            instructions: stats.instructions,
            cycles: stats.cycles,
            ipc: stats.ipc(),
            l2_data_miss_rate: l2.data.miss_rate(),
            l2_data_misses: data_misses,
            hash_hit_rate: if l2.hash.accesses() == 0 {
                1.0
            } else {
                l2.hash.hits() as f64 / l2.hash.accesses() as f64
            },
            extra_loads_per_miss: if data_misses == 0 {
                0.0
            } else {
                extra as f64 / data_misses as f64
            },
            bus_bytes: bus.total_bytes(),
            hash_bytes: bus.hash_bytes(),
            bandwidth_gbps: if stats.cycles == 0 {
                0.0
            } else {
                bus.total_bytes() as f64 / stats.cycles as f64
            },
            l2_hash_occupancy: if occ_data + occ_hash == 0 {
                0.0
            } else {
                occ_hash as f64 / (occ_data + occ_hash) as f64
            },
            read_buffer_wait: checker.read_buffer_wait,
        }
    }

    /// The underlying hierarchy (for detailed statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        self.core.port()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_core::timing::Scheme;
    use miv_trace::Benchmark;

    fn quick(scheme: Scheme, bench: Benchmark) -> RunResult {
        let mut cfg = SystemConfig::hpca03(scheme, 256 << 10, 64);
        cfg.checker.protected_bytes = 128 << 20;
        System::for_benchmark(cfg, bench, 7).run(5_000, 40_000)
    }

    #[test]
    fn base_runs_and_produces_sane_ipc() {
        let r = quick(Scheme::Base, Benchmark::Gzip);
        assert_eq!(r.scheme, "base");
        assert_eq!(r.benchmark, "gzip");
        assert_eq!(r.instructions, 40_000);
        assert!(r.ipc > 0.1 && r.ipc <= 4.0, "ipc = {}", r.ipc);
        assert_eq!(r.hash_bytes, 0);
        assert_eq!(r.extra_loads_per_miss, 0.0);
    }

    #[test]
    fn chash_slower_than_base_but_faster_than_naive() {
        let base = quick(Scheme::Base, Benchmark::Swim);
        let chash = quick(Scheme::CHash, Benchmark::Swim);
        let naive = quick(Scheme::Naive, Benchmark::Swim);
        assert!(chash.ipc <= base.ipc * 1.02, "{} vs {}", chash.ipc, base.ipc);
        assert!(naive.ipc < chash.ipc, "{} vs {}", naive.ipc, chash.ipc);
        assert!(
            naive.extra_loads_per_miss > chash.extra_loads_per_miss,
            "{} vs {}",
            naive.extra_loads_per_miss,
            chash.extra_loads_per_miss
        );
    }

    #[test]
    fn hash_occupancy_only_for_caching_schemes() {
        let chash = quick(Scheme::CHash, Benchmark::Twolf);
        assert!(chash.l2_hash_occupancy > 0.0);
        let naive = quick(Scheme::Naive, Benchmark::Twolf);
        assert_eq!(naive.l2_hash_occupancy, 0.0);
    }

    #[test]
    fn derived_metrics() {
        let r = quick(Scheme::Base, Benchmark::Gcc);
        assert!((r.normalized_ipc(r.ipc) - 1.0).abs() < 1e-12);
        assert!((r.slowdown_vs(r.ipc) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "working set larger")]
    fn oversized_working_set_rejected() {
        let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
        cfg.checker.protected_bytes = 1 << 20;
        let _ = System::for_benchmark(cfg, Benchmark::Mcf, 1);
    }
}
