//! The assembled machine and measurement runs.

use miv_cpu::Core;
use miv_obs::JsonValue;
use miv_trace::{Profile, TraceGenerator};

use crate::config::SystemConfig;
use crate::hierarchy::Hierarchy;
use crate::telemetry::{Sample, Telemetry};

/// Measured results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Scheme label (`base`, `naive`, `chash`, `mhash`, `ihash`).
    pub scheme: String,
    /// Workload name.
    pub benchmark: String,
    /// Instructions measured (after warm-up).
    pub instructions: u64,
    /// Cycles elapsed in the measurement window.
    pub cycles: u64,
    /// Instructions per cycle — the paper's headline metric.
    pub ipc: f64,
    /// L2 miss rate for program data accesses (Figure 4).
    pub l2_data_miss_rate: f64,
    /// Demand L2 data misses.
    pub l2_data_misses: u64,
    /// L2 hit rate for hash-line accesses (1.0 when the scheme never
    /// touches hashes).
    pub hash_hit_rate: f64,
    /// Memory blocks loaded beyond demand fetches, per L2 data miss
    /// (Figure 5a).
    pub extra_loads_per_miss: f64,
    /// Total bytes moved on the memory bus.
    pub bus_bytes: u64,
    /// Bytes moved for hash-tree traffic.
    pub hash_bytes: u64,
    /// Memory-bus data bandwidth used, in GB/s at the 1 GHz clock.
    pub bandwidth_gbps: f64,
    /// Fraction of L2 lines holding hashes at the end of the run.
    pub l2_hash_occupancy: f64,
    /// Cycles demand fetches waited for a read-buffer entry.
    pub read_buffer_wait: u64,
}

impl RunResult {
    /// Slowdown of this run relative to a baseline IPC.
    pub fn slowdown_vs(&self, base_ipc: f64) -> f64 {
        if self.ipc == 0.0 {
            f64::INFINITY
        } else {
            base_ipc / self.ipc
        }
    }

    /// Normalized IPC relative to a baseline (1.0 = no overhead).
    pub fn normalized_ipc(&self, base_ipc: f64) -> f64 {
        if base_ipc == 0.0 {
            0.0
        } else {
            self.ipc / base_ipc
        }
    }

    /// JSON form with one field per metric, in declaration order.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::obj();
        o.push("scheme", self.scheme.as_str());
        o.push("benchmark", self.benchmark.as_str());
        o.push("instructions", self.instructions);
        o.push("cycles", self.cycles);
        o.push("ipc", self.ipc);
        o.push("l2_data_miss_rate", self.l2_data_miss_rate);
        o.push("l2_data_misses", self.l2_data_misses);
        o.push("hash_hit_rate", self.hash_hit_rate);
        o.push("extra_loads_per_miss", self.extra_loads_per_miss);
        o.push("bus_bytes", self.bus_bytes);
        o.push("hash_bytes", self.hash_bytes);
        o.push("bandwidth_gbps", self.bandwidth_gbps);
        o.push("l2_hash_occupancy", self.l2_hash_occupancy);
        o.push("read_buffer_wait", self.read_buffer_wait);
        o
    }
}

/// A configured machine attached to one workload.
///
/// # Examples
///
/// ```
/// use miv_core::Scheme;
/// use miv_sim::{System, SystemConfig};
/// use miv_trace::Benchmark;
///
/// let cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
/// let mut sys = System::for_benchmark(cfg, Benchmark::Gzip, 1);
/// let result = sys.run(10_000, 50_000);
/// assert!(result.ipc > 0.0);
/// ```
#[derive(Debug)]
pub struct System {
    core: Core<Hierarchy>,
    trace: TraceGenerator,
    benchmark: String,
    scheme: String,
    prewarm_span: u64,
    prewarmed: bool,
}

impl System {
    /// Builds a machine running the given profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile's working set exceeds the checker's
    /// protected segment.
    pub fn new(config: SystemConfig, profile: Profile, seed: u64) -> Self {
        assert!(
            profile.working_set <= config.checker.protected_bytes,
            "working set larger than the protected segment"
        );
        let hierarchy = Hierarchy::new(&config);
        System {
            core: Core::new(config.core, hierarchy),
            trace: TraceGenerator::new(profile, seed),
            benchmark: profile.name.to_string(),
            scheme: config.checker.scheme.label().to_string(),
            // The capacity-interesting (mid) region is what must be
            // resident for steady state; the far region never fits.
            prewarm_span: profile.mid_set,
            prewarmed: false,
        }
    }

    /// Functional cache warm-up: touches the tail of the working set once
    /// so capacity behaviour (rather than compulsory misses over the slow
    /// stochastic coverage of the footprint) governs the measurement
    /// window. Bounded to a few multiples of the L2 so huge streaming
    /// footprints stay cheap. Timing state and statistics are discarded
    /// by the warm-up reset in [`run`](Self::run).
    fn prewarm(&mut self) {
        use miv_cpu::MemoryPort;
        let hierarchy = self.core.port_mut();
        let line = hierarchy.l1().config().line_bytes as u64;
        let l2_bytes = hierarchy.l2_capacity_bytes();
        let span = self.prewarm_span.min(4 * l2_bytes);
        let mut addr = 0;
        while addr < span {
            hierarchy.load(0, addr);
            addr += line;
        }
    }

    /// Builds a machine running one of the paper's benchmarks.
    pub fn for_benchmark(config: SystemConfig, benchmark: miv_trace::Benchmark, seed: u64) -> Self {
        Self::new(config, benchmark.profile(), seed)
    }

    /// Attaches a metrics registry and event stream to every level of
    /// the machine (L1, L2, bus, hash unit, checker). Observation is
    /// behaviour-neutral: timing and the built-in statistics do not
    /// change when telemetry is attached.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.core
            .port_mut()
            .attach_observability(telemetry.registry(), telemetry.events().sink());
    }

    /// Runs `warmup` instructions (statistics discarded), then `measure`
    /// instructions, returning the measured results.
    pub fn run(&mut self, warmup: u64, measure: u64) -> RunResult {
        self.run_sampled(warmup, measure, measure).0
    }

    /// Like [`run`](Self::run), but additionally snapshots the machine
    /// every `interval` committed instructions, returning the
    /// per-interval time series (IPC, L2 data/hash hit rates, bus
    /// utilization) alongside the run totals. An `interval` of zero is
    /// treated as `measure` (a single sample covering the whole window).
    pub fn run_sampled(
        &mut self,
        warmup: u64,
        measure: u64,
        interval: u64,
    ) -> (RunResult, Vec<Sample>) {
        if !self.prewarmed {
            self.prewarm();
            self.prewarmed = true;
        }
        if warmup > 0 {
            let trace = &mut self.trace;
            self.core.run(trace.take(warmup as usize));
        }
        self.core.port_mut().reset_stats();
        let interval = if interval == 0 { measure } else { interval };
        let mut samples = Vec::new();
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let mut prev_l2 = *self.core.port().l2().l2_stats();
        let mut prev_busy = {
            let now = self.core.now();
            self.core.port().l2().bus_busy_through(now)
        };
        while instructions < measure {
            let step = interval.min(measure - instructions);
            let trace = &mut self.trace;
            let stats = self.core.run(trace.take(step as usize));
            instructions += stats.instructions;
            cycles += stats.cycles;
            let l2 = *self.core.port().l2().l2_stats();
            let dl2 = l2.delta(&prev_l2);
            // Bus occupancy attributed to the wall-clock window just
            // elapsed: a transfer straddling the boundary is split across
            // the two intervals, so the ratio is exact and never exceeds
            // 1.0 — no clamping. (Summing bookings at issue time would
            // overshoot, because the arbiter books background
            // verification transfers ahead of core time.)
            let busy = {
                let now = self.core.now();
                self.core.port().l2().bus_busy_through(now)
            };
            let hit_rate = |k: miv_cache::KindStats| {
                if k.accesses() == 0 {
                    1.0
                } else {
                    k.hits() as f64 / k.accesses() as f64
                }
            };
            samples.push(Sample {
                instructions,
                cycles,
                ipc: stats.ipc(),
                l2_data_hit_rate: hit_rate(dl2.data),
                l2_hash_hit_rate: hit_rate(dl2.hash),
                bus_utilization: if stats.cycles == 0 {
                    0.0
                } else {
                    (busy - prev_busy) as f64 / stats.cycles as f64
                },
            });
            prev_l2 = l2;
            prev_busy = busy;
        }
        (self.result(instructions, cycles), samples)
    }

    /// Assembles the run totals from the hierarchy's cumulative
    /// statistics (since the post-warm-up reset).
    fn result(&self, instructions: u64, cycles: u64) -> RunResult {
        let hierarchy = self.core.port();
        let l2 = hierarchy.l2().l2_stats();
        let checker = hierarchy.l2().stats();
        let bus = hierarchy.l2().bus_stats();
        let (occ_data, occ_hash) = hierarchy.l2().l2_occupancy();

        let data_misses = l2.data.misses();
        let extra = checker.extra_loads();
        RunResult {
            scheme: self.scheme.clone(),
            benchmark: self.benchmark.clone(),
            instructions,
            cycles,
            ipc: if cycles == 0 {
                0.0
            } else {
                instructions as f64 / cycles as f64
            },
            l2_data_miss_rate: l2.data.miss_rate(),
            l2_data_misses: data_misses,
            hash_hit_rate: if l2.hash.accesses() == 0 {
                1.0
            } else {
                l2.hash.hits() as f64 / l2.hash.accesses() as f64
            },
            extra_loads_per_miss: if data_misses == 0 {
                0.0
            } else {
                extra as f64 / data_misses as f64
            },
            bus_bytes: bus.total_bytes(),
            hash_bytes: bus.hash_bytes(),
            bandwidth_gbps: if cycles == 0 {
                0.0
            } else {
                bus.total_bytes() as f64 / cycles as f64
            },
            l2_hash_occupancy: if occ_data + occ_hash == 0 {
                0.0
            } else {
                occ_hash as f64 / (occ_data + occ_hash) as f64
            },
            read_buffer_wait: checker.read_buffer_wait,
        }
    }

    /// The underlying hierarchy (for detailed statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        self.core.port()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_core::timing::Scheme;
    use miv_trace::Benchmark;

    fn quick(scheme: Scheme, bench: Benchmark) -> RunResult {
        let mut cfg = SystemConfig::hpca03(scheme, 256 << 10, 64);
        cfg.checker.protected_bytes = 128 << 20;
        System::for_benchmark(cfg, bench, 7).run(5_000, 40_000)
    }

    #[test]
    fn base_runs_and_produces_sane_ipc() {
        let r = quick(Scheme::Base, Benchmark::Gzip);
        assert_eq!(r.scheme, "base");
        assert_eq!(r.benchmark, "gzip");
        assert_eq!(r.instructions, 40_000);
        assert!(r.ipc > 0.1 && r.ipc <= 4.0, "ipc = {}", r.ipc);
        assert_eq!(r.hash_bytes, 0);
        assert_eq!(r.extra_loads_per_miss, 0.0);
    }

    #[test]
    fn chash_slower_than_base_but_faster_than_naive() {
        let base = quick(Scheme::Base, Benchmark::Swim);
        let chash = quick(Scheme::CHash, Benchmark::Swim);
        let naive = quick(Scheme::Naive, Benchmark::Swim);
        assert!(
            chash.ipc <= base.ipc * 1.02,
            "{} vs {}",
            chash.ipc,
            base.ipc
        );
        assert!(naive.ipc < chash.ipc, "{} vs {}", naive.ipc, chash.ipc);
        assert!(
            naive.extra_loads_per_miss > chash.extra_loads_per_miss,
            "{} vs {}",
            naive.extra_loads_per_miss,
            chash.extra_loads_per_miss
        );
    }

    #[test]
    fn hash_occupancy_only_for_caching_schemes() {
        let chash = quick(Scheme::CHash, Benchmark::Twolf);
        assert!(chash.l2_hash_occupancy > 0.0);
        let naive = quick(Scheme::Naive, Benchmark::Twolf);
        assert_eq!(naive.l2_hash_occupancy, 0.0);
    }

    #[test]
    fn derived_metrics() {
        let r = quick(Scheme::Base, Benchmark::Gcc);
        assert!((r.normalized_ipc(r.ipc) - 1.0).abs() < 1e-12);
        assert!((r.slowdown_vs(r.ipc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_run_matches_totals_and_yields_series() {
        let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
        cfg.checker.protected_bytes = 128 << 20;
        let mut sys = System::for_benchmark(cfg, Benchmark::Swim, 7);
        let (r, samples) = sys.run_sampled(5_000, 40_000, 10_000);
        assert_eq!(samples.len(), 4);
        assert_eq!(samples.last().unwrap().instructions, r.instructions);
        assert_eq!(samples.last().unwrap().cycles, r.cycles);
        for pair in samples.windows(2) {
            assert!(pair[1].instructions > pair[0].instructions);
            assert!(pair[1].cycles > pair[0].cycles);
        }
        for s in &samples {
            assert!(s.ipc > 0.0 && s.ipc <= 4.0);
            assert!((0.0..=1.0).contains(&s.l2_data_hit_rate));
            assert!((0.0..=1.0).contains(&s.l2_hash_hit_rate));
            assert!((0.0..=1.0).contains(&s.bus_utilization));
        }
        // Identical machine, single-chunk run: totals must agree exactly
        // (sampling is observation, not perturbation).
        let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
        cfg.checker.protected_bytes = 128 << 20;
        let whole = System::for_benchmark(cfg, Benchmark::Swim, 7).run(5_000, 40_000);
        assert_eq!(whole.instructions, r.instructions);
        assert_eq!(whole.cycles, r.cycles);
        assert_eq!(whole.bus_bytes, r.bus_bytes);
    }

    #[test]
    fn telemetry_is_behaviour_neutral_and_mirrors_l1() {
        let build = || {
            let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
            cfg.checker.protected_bytes = 128 << 20;
            System::for_benchmark(cfg, Benchmark::Gcc, 3)
        };
        let plain = {
            let mut s = build();
            s.run(2_000, 0);
            s.run(0, 20_000)
        };
        let mut observed = build();
        let telemetry = crate::Telemetry::new();
        observed.attach_telemetry(&telemetry);
        observed.run(2_000, 0);
        // Mirror the warm-up stats reset so the registry covers exactly
        // the measurement window.
        telemetry.registry().reset();
        let r = observed.run(0, 20_000);
        assert_eq!(r.cycles, plain.cycles);
        assert_eq!(r.bus_bytes, plain.bus_bytes);
        let snap = telemetry.registry().snapshot();
        let l1 = observed.hierarchy().l1().stats().data;
        assert_eq!(snap.counters["l1.data.read_hits"], l1.read_hits);
        assert_eq!(snap.counters["l1.data.read_misses"], l1.read_misses);
        assert_eq!(snap.counters["l1.data.write_hits"], l1.write_hits);
        assert!(
            telemetry.events().recorded() > 0,
            "l2 misses must produce events"
        );
    }

    #[test]
    fn registry_snapshot_and_reset_sum_to_uninterrupted_run() {
        let build = || {
            let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
            cfg.checker.protected_bytes = 128 << 20;
            let mut sys = System::for_benchmark(cfg, Benchmark::Twolf, 11);
            let telemetry = crate::Telemetry::new();
            sys.attach_telemetry(&telemetry);
            (sys, telemetry)
        };
        let (mut sys, telemetry) = build();
        sys.run(2_000, 12_000);
        sys.run(0, 18_000);
        let whole = telemetry.registry().snapshot();
        // Interrupted: snapshot + reset between the segments, then merge.
        let (mut sys, telemetry) = build();
        sys.run(2_000, 12_000);
        let mut merged = telemetry.registry().snapshot();
        telemetry.registry().reset();
        sys.run(0, 18_000);
        merged.merge(&telemetry.registry().snapshot());
        assert_eq!(merged, whole);
    }

    #[test]
    fn split_run_matches_unsplit_run() {
        let build = || {
            let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
            cfg.checker.protected_bytes = 128 << 20;
            System::for_benchmark(cfg, Benchmark::Swim, 7)
        };
        let whole = build().run(5_000, 30_000);
        // Splitting the measurement window across two `run` calls inserts
        // a `reset_stats` at the seam; it must not perturb timing —
        // in-flight bus/hash bookings survive the reset.
        let mut sys = build();
        let a = sys.run(5_000, 12_000);
        let b = sys.run(0, 18_000);
        assert_eq!(a.instructions + b.instructions, whole.instructions);
        assert_eq!(
            a.cycles + b.cycles,
            whole.cycles,
            "mid-run reset_stats must not perturb timing"
        );
        assert_eq!(a.bus_bytes + b.bus_bytes, whole.bus_bytes);
    }

    #[test]
    #[should_panic(expected = "working set larger")]
    fn oversized_working_set_rejected() {
        let mut cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
        cfg.checker.protected_bytes = 1 << 20;
        let _ = System::for_benchmark(cfg, Benchmark::Mcf, 1);
    }
}
