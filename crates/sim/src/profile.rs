//! Cycle-attribution profiler: where do a verifying memory system's
//! cycles actually go?
//!
//! `mivsim profile` answers that with two passes over every scheme, both
//! fanned out on [`SweepRunner::run_tasks`] and both deterministic at
//! any worker count:
//!
//! 1. **Workload pass** — a seeded synthetic access stream (the same
//!    seed for every scheme, so the streams are comparable) drives an
//!    [`L2Controller`] directly with a [`SpanTracer`] attached. The
//!    controller books every core-visible cycle under exactly one leaf
//!    of the access-class roots (`hit` / `clean_miss` / `verified_miss`
//!    / `flush`), records per-class latency histograms, and accounts
//!    bus and hash-unit occupancy under the `background` root. The
//!    attribution is conservative: the leaves sum exactly to the
//!    controller's total core-visible cycles
//!    ([`SchemeProfile::attributed_cycles`] `==`
//!    [`SchemeProfile::total_cycles`]).
//! 2. **Detection pass** — the scheme's cells of a quick adversary
//!    campaign run with tracers attached
//!    ([`run_cell_traced`](miv_adversary::run_cell_traced)), and their
//!    `detect;<detector>` spans (cycles = injection-to-detection
//!    latency) merge into the scheme's profile. Only the `detect`
//!    subtree is kept from campaign cells — their access-stream cycles
//!    belong to different controllers and would break the workload
//!    pass's conservation invariant.
//!
//! The results export as a latency table plus per-scheme attribution
//! trees ([`render_profile`]), a byte-stable `miv-profile-v1` JSON
//! document ([`profile_document`]), and flamegraph folded stacks
//! ([`folded_output`]).
//!
//! [`run_drift_check`] reruns the deterministic campaign over several
//! derived seeds and fails if detection behaviour drifts: any missed
//! expected detection, any false alarm, a detection count that varies
//! with the seed, or a per-scheme median latency outside
//! [`DRIFT_TOLERANCE_PCT`] of the cross-epoch median.

use miv_adversary::{cell_seed, run_cell_traced, CampaignSpec};
use miv_cache::CacheConfig;
use miv_core::timing::{CheckerConfig, L2Controller};
use miv_core::{ConfigError, Scheme};
use miv_mem::MemoryBusConfig;
use miv_obs::{
    EventSink, HistogramSnapshot, JsonValue, ProfileSnapshot, Registry, Rng, SpanTracer,
};

use crate::attack::run_campaign;
use crate::report::{f2, Table};
use crate::sweep::SweepRunner;

/// The access classes of the workload pass, in report order. Each is a
/// top-level span root and a `checker.latency.*` histogram.
pub const ACCESS_CLASSES: [&str; 4] = ["hit", "clean_miss", "verified_miss", "flush"];

/// Maximum multiplicative deviation of a scheme's per-epoch p50
/// detection latency from its cross-epoch median before
/// [`run_drift_check`] fails: every epoch's p50 must lie in
/// `[median / F, median * F]`.
///
/// Detection latency is dominated by when the post-injection stream
/// next touches the corrupted chunk, so it is seed-dependent by
/// design; the measured spread across disjoint seeds on the quick
/// campaign is up to ~6x. The factor carries a ~3x margin over that —
/// it tolerates seed noise while still tripping on order-of-magnitude
/// regressions (a detection path that became instant, or one stalled
/// behind a serialization bug).
pub const DRIFT_LATENCY_FACTOR: f64 = 16.0;

/// Everything the profiler needs: plain data, fully determining the
/// output document.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// Seed for the workload stream (shared by every scheme) and the
    /// campaign of the detection pass.
    pub seed: u64,
    /// Accesses in the workload pass, per scheme.
    pub accesses: u64,
    /// Issue a full flush + verification drain every this many accesses
    /// (`0` = only the final one), so the `flush` class is populated.
    pub quiesce_every: u64,
    /// Span of the synthetic access stream in bytes.
    pub working_set: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 line / tree block size in bytes.
    pub line_bytes: u32,
    /// Protected data segment size in bytes.
    pub protected_bytes: u64,
    /// Store fraction of the stream, in percent.
    pub write_ratio_pct: u32,
    /// The campaign whose cells feed the detection pass.
    pub campaign: CampaignSpec,
    /// Epochs for [`run_drift_check`].
    pub drift_epochs: u32,
}

impl ProfileSpec {
    /// A CI-sized profile: a short stream, the quick campaign, three
    /// drift epochs.
    pub fn quick(seed: u64) -> Self {
        ProfileSpec {
            seed,
            accesses: 6_000,
            quiesce_every: 1_000,
            working_set: 128 << 10,
            l2_bytes: 32 << 10,
            line_bytes: 64,
            protected_bytes: 256 << 10,
            write_ratio_pct: 30,
            campaign: CampaignSpec::quick(seed),
            drift_epochs: 3,
        }
    }

    /// The full profile: a longer stream over a larger footprint for
    /// stable percentiles, the full campaign, five drift epochs.
    pub fn full(seed: u64) -> Self {
        ProfileSpec {
            seed,
            accesses: 60_000,
            quiesce_every: 5_000,
            working_set: 512 << 10,
            l2_bytes: 64 << 10,
            line_bytes: 64,
            protected_bytes: 1 << 20,
            write_ratio_pct: 30,
            campaign: CampaignSpec::full(seed),
            drift_epochs: 5,
        }
    }

    /// The cycle-level checker configuration the workload pass builds
    /// for `scheme` — multi-block chunks for the schemes that hash
    /// several cache lines per tree node (same shaping as the
    /// campaign's cells).
    fn checker_config(&self, scheme: Scheme) -> CheckerConfig {
        let mut checker = CheckerConfig::hpca03(scheme);
        checker.protected_bytes = self.protected_bytes;
        checker.chunk_bytes = match scheme {
            Scheme::MHash | Scheme::IHash => self.line_bytes * 2,
            Scheme::Base | Scheme::Naive | Scheme::CHash => self.line_bytes,
        };
        checker
    }

    /// Checks that every profiled scheme's checker can be built from
    /// this spec, through the fallible constructor — the CLI's
    /// pre-flight, so a bad geometry comes back as a [`ConfigError`]
    /// instead of a mid-profile panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for &scheme in &Scheme::ALL {
            L2Controller::try_new(
                self.checker_config(scheme),
                CacheConfig::l2(self.l2_bytes, self.line_bytes),
                MemoryBusConfig::default(),
            )?;
        }
        Ok(())
    }
}

/// One scheme's profile: span tree, conservation totals and per-class
/// latency histograms. Plain data (`Send`), so the per-scheme tasks
/// ride the sweep worker pool.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeProfile {
    /// The scheme.
    pub scheme: Scheme,
    /// The controller's total core-visible cycles over the workload
    /// pass (see [`L2Controller::total_cycles`]).
    pub total_cycles: u64,
    /// The merged span tree: workload access classes, `background`
    /// occupancy, and the campaign's `detect` subtree.
    pub spans: ProfileSnapshot,
    /// `(class, histogram)` per access class, in [`ACCESS_CLASSES`]
    /// order.
    pub latency: Vec<(String, HistogramSnapshot)>,
}

impl SchemeProfile {
    /// Cycles attributed under the four access-class roots. Equals
    /// [`total_cycles`](Self::total_cycles) exactly — the conservation
    /// invariant the profiler's tests enforce.
    pub fn attributed_cycles(&self) -> u64 {
        ACCESS_CLASSES
            .iter()
            .map(|class| self.spans.cycles_under(class))
            .sum()
    }
}

/// Runs the workload pass for one scheme.
fn profile_scheme(spec: &ProfileSpec, scheme: Scheme) -> SchemeProfile {
    let mut ctl = L2Controller::try_new(
        spec.checker_config(scheme),
        CacheConfig::l2(spec.l2_bytes, spec.line_bytes),
        MemoryBusConfig::default(),
    )
    .expect("profile spec validated before dispatch");
    let spans = SpanTracer::enabled();
    ctl.attach_spans(&spans);
    let registry = Registry::new();
    ctl.attach_observability(&registry, EventSink::disabled());

    // The same seed for every scheme: identical address/write streams
    // make the per-scheme trees directly comparable.
    let mut rng = Rng::seed_from_u64(spec.seed);
    let line = spec.line_bytes as u64;
    let blocks = (spec.working_set / line).max(1);
    let mut now: u64 = 0;
    for i in 0..spec.accesses {
        let addr = rng.gen_range_u64(0, blocks) * line;
        let write = rng.gen_bool(spec.write_ratio_pct as f64 / 100.0);
        now = ctl.access(now, addr, write, false);
        if spec.quiesce_every > 0 && (i + 1) % spec.quiesce_every == 0 {
            now = ctl.quiesce(now);
        }
    }
    ctl.quiesce(now);

    let metrics = registry.snapshot();
    let latency = ACCESS_CLASSES
        .iter()
        .map(|class| {
            let hist = metrics
                .histograms
                .get(&format!("checker.latency.{class}"))
                .cloned()
                .unwrap_or_default();
            (class.to_string(), hist)
        })
        .collect();
    SchemeProfile {
        scheme,
        total_cycles: ctl.total_cycles(),
        spans: spans.snapshot(),
        latency,
    }
}

/// Runs both passes over every scheme on `runner`'s worker pool and
/// returns the per-scheme profiles in [`Scheme::ALL`] order. Pure
/// function of the spec: byte-identical at any worker count.
pub fn run_profile(spec: &ProfileSpec, runner: &SweepRunner) -> Vec<SchemeProfile> {
    let mut profiles: Vec<SchemeProfile> =
        runner.run_tasks(&Scheme::ALL, |&scheme| profile_scheme(spec, scheme));

    // Detection pass: each campaign cell runs with its own tracer and
    // returns a plain snapshot; only the `detect` subtree merges in
    // (cell access-stream cycles belong to different controllers and
    // would break the workload pass's conservation invariant).
    let cells = spec.campaign.cells();
    let traced = runner.run_tasks(&cells, |cfg| {
        let spans = SpanTracer::enabled();
        run_cell_traced(cfg, &spans);
        (cfg.scheme, spans.snapshot())
    });
    for (scheme, snap) in traced {
        let detect_only = ProfileSnapshot {
            spans: snap
                .spans
                .into_iter()
                .filter(|s| s.path.first().is_some_and(|n| n == "detect"))
                .collect(),
        };
        if let Some(profile) = profiles.iter_mut().find(|p| p.scheme == scheme) {
            profile.spans.merge(&detect_only);
        }
    }
    profiles
}

/// The `miv-profile-v1` JSON document: per-scheme conservation totals,
/// per-class latency histograms with quantiles, and the sorted span
/// array. Byte-identical across runs and worker counts.
pub fn profile_document(spec: &ProfileSpec, profiles: &[SchemeProfile]) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("schema", "miv-profile-v1");
    doc.push("seed", spec.seed);
    doc.push("accesses", spec.accesses);
    doc.push("working_set", spec.working_set);
    doc.push("l2_bytes", spec.l2_bytes);
    let schemes: Vec<JsonValue> = profiles
        .iter()
        .map(|p| {
            let mut o = JsonValue::obj();
            o.push("scheme", p.scheme.label());
            o.push("total_cycles", p.total_cycles);
            o.push("attributed_cycles", p.attributed_cycles());
            let mut latency = JsonValue::obj();
            for (class, hist) in &p.latency {
                latency.push(class, hist.to_json());
            }
            o.push("latency", latency);
            o.push("spans", p.spans.to_json());
            o
        })
        .collect();
    doc.push("schemes", schemes);
    doc
}

/// Flamegraph folded stacks across every scheme: each span line is
/// prefixed with its scheme label, so one file holds the whole grid
/// (`chash;verified_miss;demand_fetch;dram 51200`).
pub fn folded_output(profiles: &[SchemeProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        for line in p.spans.to_folded().lines() {
            out.push_str(p.scheme.label());
            out.push(';');
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Renders the text report: the per-class latency table (p50/p90/p99
/// from the log2 histograms) followed by one attribution tree per
/// scheme with the conservation totals in its header.
pub fn render_profile(spec: &ProfileSpec, profiles: &[SchemeProfile]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "cycle-attribution profile: seed {}, {} accesses/scheme over {} KiB (L2 {} KiB), \
         quiesce every {}\n\n",
        spec.seed,
        spec.accesses,
        spec.working_set >> 10,
        spec.l2_bytes >> 10,
        spec.quiesce_every,
    ));

    out.push_str("access latency by class (cycles):\n");
    let mut t = Table::new(vec![
        "scheme".into(),
        "class".into(),
        "count".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
        "max".into(),
        "mean".into(),
    ]);
    for p in profiles {
        for (class, hist) in &p.latency {
            if hist.count == 0 {
                continue;
            }
            t.row(vec![
                p.scheme.label().into(),
                class.clone(),
                hist.count.to_string(),
                format!("{:.0}", hist.quantile(0.50)),
                format!("{:.0}", hist.quantile(0.90)),
                format!("{:.0}", hist.quantile(0.99)),
                hist.max.to_string(),
                f2(hist.mean()),
            ]);
        }
    }
    out.push_str(&t.render());

    for p in profiles {
        out.push_str(&format!(
            "\ncycle attribution — {} ({} core cycles, {} attributed):\n",
            p.scheme.label(),
            p.total_cycles,
            p.attributed_cycles(),
        ));
        out.push_str(&p.spans.render_tree());
    }
    out
}

/// Runs `spec.drift_epochs` deterministic campaign epochs over derived
/// seeds and checks that detection behaviour holds still. Returns the
/// per-epoch report on success; an explanation of the drift on failure.
///
/// Hard invariants (the campaign grid determines them, so any change is
/// a regression, not noise): zero missed expected detections, zero
/// false alarms, and a detection count identical in every epoch.
/// Latency invariant: every scheme's per-epoch p50 stays within a
/// factor of [`DRIFT_LATENCY_FACTOR`] of its cross-epoch median.
pub fn run_drift_check(spec: &ProfileSpec, runner: &SweepRunner) -> Result<String, String> {
    let epochs = spec.drift_epochs.max(2);
    let mut out = String::new();
    out.push_str(&format!(
        "telemetry drift check: {} epochs, base seed {}, tolerance {:.0}x on per-scheme p50 \
         detection latency (hard invariants: no misses, no false alarms, constant detections)\n\n",
        epochs, spec.seed, DRIFT_LATENCY_FACTOR,
    ));

    let mut reports = Vec::new();
    let mut t = Table::new(vec![
        "epoch".into(),
        "seed".into(),
        "detected".into(),
        "missed".into(),
        "false".into(),
    ]);
    for epoch in 0..epochs {
        let mut campaign = spec.campaign.clone();
        campaign.seed = cell_seed(spec.seed, epoch as usize, 0, 0);
        let (_, report) = run_campaign(&campaign, runner);
        t.row(vec![
            epoch.to_string(),
            campaign.seed.to_string(),
            report.detected.to_string(),
            report.missed_expected.to_string(),
            report.false_alarms.to_string(),
        ]);
        reports.push(report);
    }
    out.push_str(&t.render());

    let mut failures = Vec::new();
    for (epoch, report) in reports.iter().enumerate() {
        if report.missed_expected > 0 {
            failures.push(format!(
                "epoch {epoch}: {} expected detections missed",
                report.missed_expected
            ));
        }
        if report.false_alarms > 0 {
            failures.push(format!(
                "epoch {epoch}: {} false alarms",
                report.false_alarms
            ));
        }
    }
    let detected0 = reports[0].detected;
    for (epoch, report) in reports.iter().enumerate().skip(1) {
        if report.detected != detected0 {
            failures.push(format!(
                "epoch {epoch}: detected {} injections, epoch 0 detected {detected0} \
                 (the grid determines this count — it must not vary with the seed)",
                report.detected
            ));
        }
    }

    out.push_str("\nper-scheme p50 detection latency across epochs:\n");
    let mut lat = Table::new(vec![
        "scheme".into(),
        "p50 range".into(),
        "median".into(),
        "max drift".into(),
    ]);
    for &scheme in &spec.campaign.schemes {
        let p50s: Vec<u64> = reports
            .iter()
            .flat_map(|r| r.latency.iter().filter(|s| s.scheme == scheme))
            .filter(|s| s.detections > 0)
            .map(|s| s.p50)
            .collect();
        if p50s.is_empty() {
            continue;
        }
        let mut sorted = p50s.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2].max(1);
        let factor = p50s
            .iter()
            .map(|&p| {
                let (p, m) = (p.max(1) as f64, median as f64);
                (p / m).max(m / p)
            })
            .fold(1.0f64, f64::max);
        lat.row(vec![
            scheme.label().into(),
            format!(
                "{}..{}",
                sorted.first().copied().unwrap_or(0),
                sorted.last().copied().unwrap_or(0)
            ),
            median.to_string(),
            format!("{factor:.1}x"),
        ]);
        if factor > DRIFT_LATENCY_FACTOR {
            failures.push(format!(
                "{}: p50 drifted {factor:.1}x from the cross-epoch median {median} \
                 (tolerance {DRIFT_LATENCY_FACTOR:.0}x)",
                scheme.label()
            ));
        }
    }
    out.push_str(&lat.render());

    if failures.is_empty() {
        out.push_str("\nverdict: STABLE\n");
        Ok(out)
    } else {
        out.push_str("\nverdict: DRIFT\n");
        Err(format!("{out}\n{}", failures.join("\n")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_pass_conserves_cycles_for_every_scheme() {
        let spec = ProfileSpec::quick(7);
        for &scheme in &Scheme::ALL {
            let p = profile_scheme(&spec, scheme);
            assert!(p.total_cycles > 0, "{scheme} ran");
            assert_eq!(
                p.attributed_cycles(),
                p.total_cycles,
                "{scheme}: access-class leaves must sum to the controller total"
            );
            let verified = p.spans.cycles_under("verified_miss");
            if scheme.verifies() {
                assert!(verified > 0, "{scheme} verifies misses");
            } else {
                assert_eq!(verified, 0, "{scheme} never verifies");
            }
        }
    }

    #[test]
    fn detection_pass_adds_detect_spans_without_breaking_conservation() {
        let mut spec = ProfileSpec::quick(7);
        spec.campaign.trials = 1;
        spec.campaign.accesses = 800;
        spec.campaign.data_bytes = 128 << 10;
        spec.campaign.l2_bytes = 16 << 10;
        spec.campaign.working_set = 64 << 10;
        let profiles = run_profile(&spec, &SweepRunner::new(2));
        assert_eq!(profiles.len(), Scheme::ALL.len());
        for p in &profiles {
            assert_eq!(p.attributed_cycles(), p.total_cycles, "{}", p.scheme);
            if p.scheme.verifies() {
                assert!(
                    p.spans.cycles_under("detect") > 0,
                    "{} campaign cells detect injections",
                    p.scheme
                );
            }
        }
        let folded = folded_output(&profiles);
        assert!(folded.lines().all(|l| l.split(' ').count() == 2));
        assert!(folded.contains("chash;detect;"));
    }

    #[test]
    fn drift_check_quick_is_stable() {
        let mut spec = ProfileSpec::quick(11);
        spec.drift_epochs = 2;
        spec.campaign.trials = 1;
        spec.campaign.accesses = 800;
        spec.campaign.data_bytes = 128 << 10;
        spec.campaign.l2_bytes = 16 << 10;
        spec.campaign.working_set = 64 << 10;
        let report = run_drift_check(&spec, &SweepRunner::new(2)).expect("stable");
        assert!(report.contains("STABLE"));
        assert!(report.contains("tolerance"));
    }
}
