//! Full-machine configuration (Table 1).

use miv_cache::CacheConfig;
use miv_core::timing::{CheckerConfig, Scheme};
use miv_cpu::CoreConfig;
use miv_hash::{HashEngineConfig, Throughput};
use miv_mem::MemoryBusConfig;

/// The complete simulated machine.
///
/// # Examples
///
/// ```
/// use miv_core::Scheme;
/// use miv_sim::SystemConfig;
///
/// let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64);
/// assert_eq!(cfg.l2.size_bytes, 1 << 20);
/// assert_eq!(cfg.checker.chunk_bytes, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L1 hit latency in cycles (Table 1: 2).
    pub l1_latency: u64,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Memory bus / DRAM timing.
    pub bus: MemoryBusConfig,
    /// Integrity checker configuration (scheme, hash unit, buffers).
    pub checker: CheckerConfig,
}

impl SystemConfig {
    /// The paper's machine (Table 1) for a given scheme, L2 capacity and
    /// L2 line size. For `MHash`/`IHash` the chunk spans two L2 lines
    /// (the geometry Figure 8 evaluates); for the other schemes chunk =
    /// line.
    pub fn hpca03(scheme: Scheme, l2_bytes: u64, l2_line: u32) -> Self {
        let mut checker = CheckerConfig::hpca03(scheme);
        checker.chunk_bytes = match scheme {
            Scheme::MHash | Scheme::IHash => l2_line * 2,
            Scheme::Base | Scheme::Naive | Scheme::CHash => l2_line,
        };
        SystemConfig {
            core: CoreConfig::default(),
            l1: CacheConfig::l1(),
            l1_latency: 2,
            l2: CacheConfig::l2(l2_bytes, l2_line),
            bus: MemoryBusConfig::default(),
            checker,
        }
    }

    /// Overrides the hash-unit throughput (Figure 6 sweep).
    pub fn with_hash_throughput(mut self, throughput: Throughput) -> Self {
        self.checker.hash = HashEngineConfig {
            throughput,
            ..self.checker.hash
        };
        self
    }

    /// Overrides the read/write buffer size (Figure 7 sweep).
    pub fn with_buffer_entries(mut self, entries: u32) -> Self {
        self.checker.buffer_entries = entries;
        self
    }

    /// Renders the Table 1 parameter listing.
    pub fn table1(&self) -> String {
        let mut out = String::new();
        let mut row = |name: &str, value: String| {
            out.push_str(&format!("  {name:<34} {value}\n"));
        };
        row("Clock frequency", "1 GHz".into());
        row(
            "L1 I/D-caches",
            format!(
                "{} KB, {}-way, {} B line (I-fetch not modelled)",
                self.l1.size_bytes >> 10,
                self.l1.assoc,
                self.l1.line_bytes
            ),
        );
        row(
            "L2 cache",
            format!(
                "unified, {} KB, {}-way, {} B line",
                self.l2.size_bytes >> 10,
                self.l2.assoc,
                self.l2.line_bytes
            ),
        );
        row("L1 latency", format!("{} cycles", self.l1_latency));
        row("L2 latency", format!("{} cycles", self.checker.l2_latency));
        row(
            "Memory latency (first chunk)",
            format!("{} cycles", self.bus.dram_latency),
        );
        row(
            "Memory bus",
            format!(
                "{} MHz, {}-B wide ({:.1} GB/s)",
                1000 / self.bus.cycles_per_beat,
                self.bus.beat_bytes,
                self.bus.peak_gbps()
            ),
        );
        row(
            "Fetch/decode, issue/commit width",
            format!("{0} / {0} per cycle", self.core.width),
        );
        row("Load/store queue size", format!("{}", self.core.lsq_size));
        row(
            "Register update unit size",
            format!("{}", self.core.ruu_size),
        );
        row(
            "Hash latency",
            format!("{} cycles", self.checker.hash.latency),
        );
        row(
            "Hash throughput",
            format!("{:.1} GB/s", self.checker.hash.throughput.as_gbps()),
        );
        row(
            "Hash read/write buffer",
            format!("{} entries each", self.checker.buffer_entries),
        );
        row("Hash length", "128 bits".into());
        row(
            "Protected segment",
            format!("{} MB", self.checker.protected_bytes >> 20),
        );
        row("Scheme", self.checker.scheme.to_string());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64);
        assert_eq!(cfg.core.width, 4);
        assert_eq!(cfg.core.ruu_size, 128);
        assert_eq!(cfg.core.lsq_size, 64);
        assert_eq!(cfg.l1.size_bytes, 64 * 1024);
        assert_eq!(cfg.l1_latency, 2);
        assert_eq!(cfg.checker.hash.latency, 160);
        assert_eq!(cfg.checker.buffer_entries, 16);
        assert!((cfg.bus.peak_gbps() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn mhash_gets_two_block_chunks() {
        let cfg = SystemConfig::hpca03(Scheme::MHash, 1 << 20, 64);
        assert_eq!(cfg.checker.chunk_bytes, 128);
        let cfg_i = SystemConfig::hpca03(Scheme::IHash, 1 << 20, 64);
        assert_eq!(cfg_i.checker.chunk_bytes, 128);
        let cfg_c = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 128);
        assert_eq!(cfg_c.checker.chunk_bytes, 128);
    }

    #[test]
    fn sweep_helpers() {
        use miv_hash::Throughput;
        let cfg = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64)
            .with_hash_throughput(Throughput::gbps(0.8))
            .with_buffer_entries(2);
        assert_eq!(cfg.checker.buffer_entries, 2);
        assert!((cfg.checker.hash.throughput.as_gbps() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn table1_renders_key_rows() {
        let t = SystemConfig::hpca03(Scheme::CHash, 1 << 20, 64).table1();
        assert!(t.contains("1 GHz"));
        assert!(t.contains("1024 KB"));
        assert!(t.contains("1.6 GB/s"));
        assert!(t.contains("3.2 GB/s"));
        assert!(t.contains("160 cycles"));
        assert!(t.contains("chash"));
    }
}
