//! The profiler's mirror of `parallel_sweep.rs`: the `miv-profile-v1`
//! document, the rendered report and the folded stacks must be
//! byte-identical at any worker count, because span snapshots merge as
//! plain data in task order (the `ProfileSnapshot::merge` analogue of
//! `Registry::absorb`). Also pins the conservation invariant end to
//! end: every scheme's access-class leaves sum exactly to its
//! controller's core-visible cycle total.

use miv_sim::profile::{folded_output, profile_document, render_profile, run_profile, ProfileSpec};
use miv_sim::SweepRunner;

/// A CI-sized spec with the campaign shrunk the same way the attack
/// tests shrink it, so the whole grid runs in a couple of seconds.
fn quick_spec() -> ProfileSpec {
    let mut spec = ProfileSpec::quick(42);
    spec.campaign.trials = 1;
    spec.campaign.accesses = 800;
    spec.campaign.data_bytes = 128 << 10;
    spec.campaign.l2_bytes = 16 << 10;
    spec.campaign.working_set = 64 << 10;
    spec
}

#[test]
fn profile_outputs_identical_at_any_job_count() {
    let spec = quick_spec();
    let documents = |jobs: usize| {
        let profiles = run_profile(&spec, &SweepRunner::new(jobs));
        (
            profile_document(&spec, &profiles).render_pretty(),
            render_profile(&spec, &profiles),
            folded_output(&profiles),
        )
    };
    let (json1, text1, folded1) = documents(1);
    assert!(json1.contains("\"schema\": \"miv-profile-v1\""));
    assert!(text1.contains("cycle attribution"));
    assert!(folded1.contains("chash;"));
    for jobs in [2, 4] {
        let (json, text, folded) = documents(jobs);
        assert_eq!(json, json1, "JSON document diverged at --jobs {jobs}");
        assert_eq!(text, text1, "text report diverged at --jobs {jobs}");
        assert_eq!(folded, folded1, "folded stacks diverged at --jobs {jobs}");
    }
}

#[test]
fn profile_document_reports_exact_conservation() {
    let spec = quick_spec();
    let profiles = run_profile(&spec, &SweepRunner::new(2));
    for p in &profiles {
        assert_eq!(
            p.attributed_cycles(),
            p.total_cycles,
            "{}: access-class leaf spans must sum exactly to the controller total",
            p.scheme
        );
        // The latency histograms and the span tree describe the same
        // accesses: per-class histogram counts match the span counts.
        for (class, hist) in &p.latency {
            let span_count: u64 = p
                .spans
                .spans
                .iter()
                .filter(|s| s.path.len() == 1 && s.path[0] == *class)
                .map(|s| s.count)
                .sum();
            assert_eq!(
                hist.count, span_count,
                "{}: {class} histogram and span disagree on access count",
                p.scheme
            );
        }
    }
}
