//! End-to-end smoke tests of the command-line binaries (`figures`,
//! `mivsim`, `calibrate` compile targets), exercising argument parsing,
//! trace record/replay and JSON export through real processes.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn figures_table1() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_figures"), &["table1"]);
    assert!(ok);
    assert!(stdout.contains("1 GHz"));
    assert!(stdout.contains("3.2 GB/s"));
}

#[test]
fn figures_diagrams() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_figures"), &["fig1", "fig2"]);
    assert!(ok);
    assert!(stdout.contains("secure root"));
    assert!(stdout.contains("READ BUFFER"));
}

#[test]
fn figures_rejects_unknown_artifact() {
    let (ok, _, stderr) = run(env!("CARGO_BIN_EXE_figures"), &["fig99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown artifact"));
}

#[test]
fn figures_quick_fig4_runs() {
    let (ok, stdout, _) =
        run(env!("CARGO_BIN_EXE_figures"), &["--warmup", "2000", "--measure", "8000", "fig4"]);
    assert!(ok);
    assert!(stdout.contains("chash-256K"));
    assert!(stdout.contains("mcf"));
}

#[test]
fn mivsim_run_and_sweep() {
    let exe = env!("CARGO_BIN_EXE_mivsim");
    let (ok, stdout, _) = run(
        exe,
        &["run", "--scheme", "chash", "--bench", "gzip", "--l2", "256K", "--warmup", "2000",
          "--measure", "10000"],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("chash"));
    assert!(stdout.contains("gzip"));

    let (ok, stdout, _) = run(
        exe,
        &["run", "--bench", "gzip", "--warmup", "1000", "--measure", "5000", "--json"],
    );
    assert!(ok);
    assert!(stdout.trim_start().starts_with('['), "JSON output: {stdout}");
    assert!(stdout.contains("\"ipc\""));
}

#[test]
fn mivsim_rejects_bad_args() {
    let exe = env!("CARGO_BIN_EXE_mivsim");
    let (ok, _, stderr) = run(exe, &["run", "--scheme", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scheme"));
    let (ok, _, stderr) = run(exe, &["run"]);
    assert!(!ok);
    assert!(stderr.contains("need --bench, --custom or --trace"));
    let (ok, _, _) = run(exe, &[]);
    assert!(!ok);
}

#[test]
fn mivsim_record_and_replay() {
    let exe = env!("CARGO_BIN_EXE_mivsim");
    let dir = std::env::temp_dir().join("miv_bin_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let trc = dir.join("smoke.trc");
    let trc_str = trc.to_str().unwrap();

    let (ok, _, stderr) = run(
        exe,
        &["record", "--bench", "vpr", "--count", "30000", "--seed", "9", "--out", trc_str],
    );
    assert!(ok, "{stderr}");
    assert!(stderr.contains("wrote 30000 records"));

    let (ok, stdout, stderr) = run(
        exe,
        &["run", "--scheme", "naive", "--trace", trc_str, "--warmup", "5000"],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("naive"));
    assert!(stdout.contains("smoke.trc"));
    std::fs::remove_file(trc).ok();
}
