//! End-to-end smoke tests of the command-line binaries (`figures`,
//! `mivsim`, `calibrate` compile targets), exercising argument parsing,
//! trace record/replay and JSON export through real processes.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn figures_table1() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_figures"), &["table1"]);
    assert!(ok);
    assert!(stdout.contains("1 GHz"));
    assert!(stdout.contains("3.2 GB/s"));
}

#[test]
fn figures_diagrams() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_figures"), &["fig1", "fig2"]);
    assert!(ok);
    assert!(stdout.contains("secure root"));
    assert!(stdout.contains("READ BUFFER"));
}

#[test]
fn figures_rejects_unknown_artifact() {
    let (ok, _, stderr) = run(env!("CARGO_BIN_EXE_figures"), &["fig99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown artifact"));
}

#[test]
fn figures_quick_fig4_runs_and_aggregates_metrics() {
    let dir = std::env::temp_dir().join("miv_bin_smoke_figures");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("figures.json");
    let (ok, stdout, _) = run(
        env!("CARGO_BIN_EXE_figures"),
        &[
            "--warmup",
            "2000",
            "--measure",
            "8000",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "fig4",
        ],
    );
    assert!(ok);
    assert!(stdout.contains("chash-256K"));
    assert!(stdout.contains("mcf"));
    // The aggregate document spans every run of the sweep: no single-run
    // section, but counters from all schemes and L2 sizes.
    let doc = miv_obs::JsonValue::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("miv-metrics-v1"));
    assert!(matches!(doc.get("run"), Some(miv_obs::JsonValue::Null)));
    assert!(
        doc.get("counters")
            .unwrap()
            .get("l2.data.read_misses")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    std::fs::remove_file(metrics).ok();
}

#[test]
fn figures_stdout_is_byte_identical_across_job_counts() {
    let args = |jobs: &'static str| {
        [
            "--warmup",
            "2000",
            "--measure",
            "8000",
            "--jobs",
            jobs,
            "--only",
            "fig5",
            "claims",
        ]
    };
    let (ok1, stdout1, _) = run(env!("CARGO_BIN_EXE_figures"), &args("1"));
    let (ok4, stdout4, _) = run(env!("CARGO_BIN_EXE_figures"), &args("4"));
    assert!(ok1 && ok4);
    assert!(stdout1.contains("== fig5"));
    assert!(stdout1.contains("== claims"));
    assert_eq!(stdout1, stdout4, "output must not depend on --jobs");
}

#[test]
fn mivsim_parallel_sweep_matches_sequential() {
    let exe = env!("CARGO_BIN_EXE_mivsim");
    let args = |jobs: &'static str| {
        [
            "sweep",
            "--bench",
            "gzip",
            "--l2",
            "256K",
            "--warmup",
            "2000",
            "--measure",
            "10000",
            "--jobs",
            jobs,
            "--json",
        ]
    };
    let (ok1, stdout1, _) = run(exe, &args("1"));
    let (ok4, stdout4, _) = run(exe, &args("4"));
    assert!(ok1 && ok4);
    assert_eq!(stdout1, stdout4);
    // One result object per scheme, in Scheme::ALL order.
    for scheme in ["base", "naive", "chash", "mhash", "ihash"] {
        assert!(
            stdout1.contains(&format!("\"{scheme}\"")),
            "{scheme} missing"
        );
    }
}

#[test]
fn mivsim_metrics_and_trace_events_export() {
    let exe = env!("CARGO_BIN_EXE_mivsim");
    let dir = std::env::temp_dir().join("miv_bin_smoke_metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("m.json");
    let events = dir.join("e.jsonl");

    // Flag-first invocation: the command defaults to `run` and the
    // workload to gzip, as in the documented
    // `mivsim --scheme chash --metrics-out m.json --trace-events e.jsonl`.
    let (ok, _, stderr) = run(
        exe,
        &[
            "--scheme",
            "chash",
            "--l2",
            "256K",
            "--warmup",
            "2000",
            "--measure",
            "20000",
            "--sample-interval",
            "5000",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-events",
            events.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");

    let doc = miv_obs::JsonValue::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("miv-metrics-v1"));
    assert_eq!(
        doc.get("run").unwrap().get("scheme").unwrap().as_str(),
        Some("chash")
    );
    // Per-line-kind L2 hit rates.
    for kind in ["data", "hash"] {
        let k = doc.get("l2").unwrap().get(kind).unwrap();
        assert!(
            k.get("accesses").unwrap().as_u64().unwrap() > 0,
            "no {kind} accesses"
        );
        let rate = k.get("hit_rate").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&rate));
    }
    // Tree-walk-depth and hash-queue-latency histograms with quantiles.
    let hists = doc.get("histograms").unwrap();
    for name in [
        "checker.walk_depth",
        "hash_unit.queue_wait",
        "bus.wait_cycles",
    ] {
        let h = hists
            .get(name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(
            h.get("count").unwrap().as_u64().unwrap() > 0,
            "{name} empty"
        );
        for q in ["p50", "p90", "p99", "mean"] {
            assert!(h.get(q).is_some(), "{name} missing {q}");
        }
    }
    // Interval time series: 20k instructions at 5k per sample.
    let samples = doc.get("samples").unwrap().as_array().unwrap();
    assert!(
        samples.len() >= 2,
        "want >=2 samples, got {}",
        samples.len()
    );
    assert!(samples[0]
        .get("l2_hash_hit_rate")
        .unwrap()
        .as_f64()
        .is_some());

    // Event stream: JSONL, one object with a type tag per line.
    let jsonl = std::fs::read_to_string(&events).unwrap();
    assert!(!jsonl.trim().is_empty(), "no events recorded");
    for line in jsonl.lines().take(50) {
        let ev = miv_obs::JsonValue::parse(line).unwrap();
        assert!(ev.get("type").unwrap().as_str().is_some());
        assert!(ev.get("cycle").unwrap().as_u64().is_some());
    }
    std::fs::remove_file(metrics).ok();
    std::fs::remove_file(events).ok();
}

#[test]
fn mivsim_run_and_sweep() {
    let exe = env!("CARGO_BIN_EXE_mivsim");
    let (ok, stdout, _) = run(
        exe,
        &[
            "run",
            "--scheme",
            "chash",
            "--bench",
            "gzip",
            "--l2",
            "256K",
            "--warmup",
            "2000",
            "--measure",
            "10000",
        ],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("chash"));
    assert!(stdout.contains("gzip"));

    let (ok, stdout, _) = run(
        exe,
        &[
            "run",
            "--bench",
            "gzip",
            "--warmup",
            "1000",
            "--measure",
            "5000",
            "--json",
        ],
    );
    assert!(ok);
    assert!(
        stdout.trim_start().starts_with('['),
        "JSON output: {stdout}"
    );
    assert!(stdout.contains("\"ipc\""));
}

#[test]
fn mivsim_rejects_bad_args() {
    let exe = env!("CARGO_BIN_EXE_mivsim");
    let (ok, _, stderr) = run(exe, &["run", "--scheme", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scheme"));
    let (ok, _, stderr) = run(exe, &["run", "--no-such-flag"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"));
    let (ok, _, _) = run(exe, &[]);
    assert!(!ok);
}

#[test]
fn mivsim_record_and_replay() {
    let exe = env!("CARGO_BIN_EXE_mivsim");
    let dir = std::env::temp_dir().join("miv_bin_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let trc = dir.join("smoke.trc");
    let trc_str = trc.to_str().unwrap();

    let (ok, _, stderr) = run(
        exe,
        &[
            "record", "--bench", "vpr", "--count", "30000", "--seed", "9", "--out", trc_str,
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stderr.contains("wrote 30000 records"));

    let (ok, stdout, stderr) = run(
        exe,
        &[
            "run", "--scheme", "naive", "--trace", trc_str, "--warmup", "5000",
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("naive"));
    assert!(stdout.contains("smoke.trc"));
    std::fs::remove_file(trc).ok();
}
