//! Determinism of the parallel sweep engine: a Figure 3 sweep executed
//! with one worker and with four workers must produce identical
//! `RunResult` vectors and identical merged telemetry documents.
//!
//! Merged documents match in full — including the event section: per-run
//! event rings absorbed in request order reproduce byte-for-byte the
//! tail a shared sequential ring of the same capacity would hold, since
//! an event evicted from a per-run ring is more than `capacity` records
//! from the end of that run's stream and could not have survived a
//! shared ring either.

use miv_core::Scheme;
use miv_sim::experiments::{fig3_data, ExperimentConfig, RunCtx};
use miv_sim::{RunRequest, SweepRunner, SystemConfig, Telemetry};
use miv_trace::Benchmark;

/// A short window keeps the 162-run fig3 grid tractable in the
/// unoptimized test profile; determinism does not depend on run length.
fn quick() -> ExperimentConfig {
    ExperimentConfig {
        warmup: 2_000,
        measure: 8_000,
        seed: 42,
    }
}

#[test]
fn fig3_rows_identical_at_any_job_count() {
    let sequential = fig3_data(&RunCtx::new(quick()).with_jobs(1));
    let parallel = fig3_data(&RunCtx::new(quick()).with_jobs(4));
    assert_eq!(sequential.len(), 54, "6 configs x 9 benchmarks");
    assert_eq!(sequential, parallel);
}

#[test]
fn merged_metrics_documents_identical_at_any_job_count() {
    // A fig3-shaped slice (two configs, three schemes, two benchmarks)
    // with telemetry capture on: the aggregated miv-metrics-v1 document
    // and the event JSONL must not depend on the worker count.
    let requests: Vec<RunRequest> = [(256u64, 64u32), (1024, 64)]
        .into_iter()
        .flat_map(|(l2_kb, line)| {
            [Benchmark::Gzip, Benchmark::Mcf]
                .into_iter()
                .flat_map(move |bench| {
                    [Scheme::Base, Scheme::CHash, Scheme::Naive]
                        .into_iter()
                        .map(move |scheme| {
                            RunRequest::new(
                                SystemConfig::hpca03(scheme, l2_kb << 10, line),
                                bench,
                                2_000,
                                8_000,
                                42,
                            )
                        })
                })
        })
        .collect();
    let documents = |jobs: usize| {
        let telemetry = Telemetry::with_event_capacity(1024);
        let runner = SweepRunner::new(jobs).capture_telemetry(1024);
        let outcomes = runner.run(&requests);
        for outcome in &outcomes {
            telemetry.absorb(outcome.telemetry.as_ref().expect("capture enabled"));
        }
        let results: Vec<_> = outcomes.into_iter().map(|o| o.result).collect();
        (
            results,
            telemetry.aggregate_document().render_pretty(),
            telemetry.events_jsonl(),
        )
    };
    let (seq_results, seq_doc, seq_events) = documents(1);
    let (par_results, par_doc, par_events) = documents(4);
    assert_eq!(seq_results, par_results);
    assert_eq!(seq_doc, par_doc);
    assert_eq!(seq_events, par_events);
    assert!(seq_doc.contains("l2.data.read_misses"));
    assert!(!seq_events.trim().is_empty());
}
