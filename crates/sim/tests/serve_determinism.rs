//! The serving layer's contract: byte-identical output at any worker
//! count, per-tenant isolation of tamper detection, and readable
//! configuration errors instead of worker panics.

use miv_core::ConfigError;
use miv_sim::serve::{
    render_serve, run_serve, serve_document, ServeSpec, ServiceSummary, TamperPolicy,
};
use miv_sim::SweepRunner;

/// A CI-sized fleet, shortened so the whole suite stays fast.
fn spec() -> ServeSpec {
    let mut spec = ServeSpec::quick(42);
    spec.requests = 600;
    spec
}

#[test]
fn serve_is_byte_identical_at_any_worker_count() {
    let spec = spec();
    assert!(spec.shards >= 4, "the service must be genuinely sharded");

    let sequential = run_serve(&spec, &SweepRunner::new(1)).unwrap();
    let parallel = run_serve(&spec, &SweepRunner::new(4)).unwrap();
    assert_eq!(sequential, parallel, "outcomes must not depend on --jobs");

    // The rendered report and the miv-serve-v1 document — the two
    // externally visible artifacts — byte for byte.
    assert_eq!(
        render_serve(&spec, &sequential),
        render_serve(&spec, &parallel)
    );
    assert_eq!(
        serve_document(&spec, &sequential).render_pretty(),
        serve_document(&spec, &parallel).render_pretty()
    );
}

#[test]
fn every_tenant_probe_is_detected() {
    let spec = spec();
    let outcomes = run_serve(&spec, &SweepRunner::new(2)).unwrap();
    assert_eq!(outcomes.len(), spec.shards as usize);
    let summary = ServiceSummary::from_outcomes(&outcomes);
    assert_eq!(summary.probes, spec.shards as u64);
    assert!(
        summary.clean(),
        "a missed per-tenant detection: {outcomes:#?}"
    );
    // Every tenant served its full stream and the report names each.
    let report = render_serve(&spec, &outcomes);
    for outcome in &outcomes {
        assert_eq!(outcome.ops(), spec.requests);
        assert!(report.contains(&format!("tenant-{}", outcome.tenant)));
    }
}

#[test]
fn tampering_one_tenant_perturbs_no_other_tenant() {
    // The isolation experiment: probing (and corrupting) tenant 1's
    // memory must leave every other tenant's outcome — counters,
    // cycles, telemetry, the lot — byte-identical to a probe-free run.
    let victim = 1;
    let mut tampered = spec();
    tampered.tamper = TamperPolicy::Tenant(victim);
    let mut clean = spec();
    clean.tamper = TamperPolicy::Off;

    let tampered_outcomes = run_serve(&tampered, &SweepRunner::new(2)).unwrap();
    let clean_outcomes = run_serve(&clean, &SweepRunner::new(2)).unwrap();

    let probe = tampered_outcomes[victim as usize]
        .probe
        .expect("the victim tenant is probed");
    assert!(probe.detected, "the victim's corruption must be caught");

    for (t, c) in tampered_outcomes.iter().zip(&clean_outcomes) {
        if t.tenant == victim {
            continue;
        }
        assert_eq!(
            t, c,
            "tenant-{} was perturbed by another tenant's probe",
            t.tenant
        );
    }
}

#[test]
fn bad_geometry_is_a_config_error_not_a_panic() {
    let mut bad = spec();
    bad.data_bytes = 0;
    assert_eq!(
        run_serve(&bad, &SweepRunner::new(2)).unwrap_err(),
        ConfigError::EmptySegment
    );

    let mut bad = spec();
    bad.l2_bytes = 256;
    assert!(matches!(
        run_serve(&bad, &SweepRunner::new(2)).unwrap_err(),
        ConfigError::CacheTooSmall { .. }
    ));
}
