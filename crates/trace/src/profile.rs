//! The workload parameter space.

/// Stochastic parameters describing one workload's memory behaviour.
///
/// All probabilities are in `[0, 1]`. See the crate docs for how each
/// knob maps onto the paper's benchmark characteristics.
///
/// # Examples
///
/// ```
/// use miv_trace::Profile;
///
/// let p = Profile::streaming_scan("custom", 8 << 20);
/// assert_eq!(p.name, "custom");
/// p.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Display name.
    pub name: &'static str,
    /// Total bytes the workload touches (its footprint in the protected
    /// segment).
    pub working_set: u64,
    /// Size of the frequently-reused hot region (temporal locality).
    pub hot_set: u64,
    /// Probability a new access run targets the hot region.
    pub hot_fraction: f64,
    /// Size of the mid region — the capacity-interesting footprint that
    /// straddles the L2 sweep (256 KB – 4 MB). Runs that are neither hot
    /// nor far land here.
    pub mid_set: u64,
    /// Probability a new access run targets the *far* region (the whole
    /// working set): a small stream of long-reuse-distance traffic that
    /// keeps a realistic trickle of misses even in large caches.
    pub far_fraction: f64,
    /// Fraction of instructions that are memory operations.
    pub mem_fraction: f64,
    /// Of memory operations, the fraction that are stores.
    pub write_fraction: f64,
    /// Mean sequential-run length in 8-byte words (geometric). Memory
    /// accesses walk word-by-word through a run, then jump; long runs are
    /// what give SPEC its line-level (and hash-line-level) spatial
    /// locality, short runs make accesses effectively random.
    pub run_words: u32,
    /// Probability a load's address depends on the previous load
    /// (pointer chasing — serializes misses).
    pub pointer_chase: f64,
    /// Probability a store belongs to a whole-line streaming overwrite
    /// (enables the §5.3 write-allocate-without-fetch path).
    pub streaming_stores: f64,
    /// Fraction of instructions that are conditional branches (SPEC
    /// integer codes ≈ 0.12–0.18, FP codes far lower).
    pub branch_fraction: f64,
    /// Fraction of branches the predictor misses (redirecting fetch).
    pub mispredict_rate: f64,
}

impl Profile {
    /// Checks all parameters, returning the first problem found.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the invalid parameter.
    pub fn try_validate(&self) -> Result<(), String> {
        for (label, p) in [
            ("hot_fraction", self.hot_fraction),
            ("far_fraction", self.far_fraction),
            ("mem_fraction", self.mem_fraction),
            ("write_fraction", self.write_fraction),
            ("pointer_chase", self.pointer_chase),
            ("streaming_stores", self.streaming_stores),
            ("branch_fraction", self.branch_fraction),
            ("mispredict_rate", self.mispredict_rate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{label} = {p} out of [0,1]"));
            }
        }
        if self.run_words < 1 {
            return Err("run length must be at least one word".into());
        }
        if self.working_set < 4096 {
            return Err("working set too small".into());
        }
        if self.hot_set > self.working_set {
            return Err("hot set exceeds working set".into());
        }
        if !(self.hot_set <= self.mid_set && self.mid_set <= self.working_set) {
            return Err("regions must nest: hot ⊆ mid ⊆ working set".into());
        }
        if self.hot_fraction + self.far_fraction > 1.0 {
            return Err("hot + far probabilities exceed 1".into());
        }
        if self.branch_fraction + self.mem_fraction >= 1.0 {
            return Err("branches + memory operations must leave room for compute".into());
        }
        Ok(())
    }

    /// Asserts all parameters are in range.
    ///
    /// # Panics
    ///
    /// Panics with the message from [`try_validate`](Self::try_validate)
    /// on the first invalid parameter.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            // miv-analyze: allow(no-unwrap-in-lib, reason="documented '# Panics' assert API; try_validate is the non-panicking form")
            panic!("{msg}");
        }
    }

    /// A generic cache-friendly integer workload template.
    pub fn cache_friendly(name: &'static str, working_set: u64) -> Self {
        Profile {
            name,
            working_set,
            hot_set: working_set / 8,
            hot_fraction: 0.9,
            mid_set: working_set,
            far_fraction: 0.0,
            mem_fraction: 0.35,
            write_fraction: 0.3,
            run_words: 64,
            pointer_chase: 0.02,
            streaming_stores: 0.1,
            branch_fraction: 0.15,
            mispredict_rate: 0.07,
        }
    }

    /// A generic streaming-scan template (long sequential sweeps with
    /// little reuse — the applu/swim shape).
    pub fn streaming_scan(name: &'static str, working_set: u64) -> Self {
        Profile {
            name,
            working_set,
            hot_set: 64 << 10,
            hot_fraction: 0.15,
            mid_set: working_set,
            far_fraction: 0.0,
            mem_fraction: 0.45,
            write_fraction: 0.35,
            run_words: 2048,
            pointer_chase: 0.0,
            streaming_stores: 0.8,
            branch_fraction: 0.03,
            mispredict_rate: 0.01,
        }
    }

    /// A generic pointer-chasing template (the mcf shape).
    pub fn pointer_chaser(name: &'static str, working_set: u64) -> Self {
        Profile {
            name,
            working_set,
            hot_set: 512 << 10,
            hot_fraction: 0.35,
            mid_set: working_set,
            far_fraction: 0.0,
            mem_fraction: 0.4,
            write_fraction: 0.15,
            run_words: 4,
            pointer_chase: 0.5,
            streaming_stores: 0.0,
            branch_fraction: 0.16,
            mispredict_rate: 0.09,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_validate() {
        Profile::cache_friendly("a", 1 << 20).validate();
        Profile::streaming_scan("b", 32 << 20).validate();
        Profile::pointer_chaser("c", 64 << 20).validate();
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_probability_rejected() {
        let mut p = Profile::cache_friendly("bad", 1 << 20);
        p.mem_fraction = 1.5;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "hot set exceeds")]
    fn hot_set_bound() {
        let mut p = Profile::cache_friendly("bad", 1 << 20);
        p.hot_set = 2 << 20;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "run length")]
    fn zero_run_rejected() {
        let mut p = Profile::cache_friendly("bad", 1 << 20);
        p.run_words = 0;
        p.validate();
    }
}
