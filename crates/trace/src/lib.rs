//! Synthetic SPEC CPU2000-like workloads for the memory integrity
//! simulator.
//!
//! The paper evaluates nine SPEC CPU2000 benchmarks (gcc, gzip, mcf,
//! twolf, vortex, vpr, applu, art, swim) on SimpleScalar, chosen for
//! their "varied characteristics such as the level of ILP, cache
//! miss-rates, etc." We cannot run Alpha binaries; instead each benchmark
//! is modelled as a parameterized stochastic instruction stream
//! ([`Profile`]) calibrated to reproduce the *memory-system character*
//! that the paper's results depend on:
//!
//! * **working-set size** vs the L2 capacity sweep (256 KB / 1 MB / 4 MB)
//!   — determines which benchmarks stop missing as the cache grows
//!   (twolf/vortex/vpr) and which never fit (mcf/applu/art/swim);
//! * **pointer chasing** — serializes misses (mcf), destroying
//!   memory-level parallelism;
//! * **streaming stores** over whole lines — the write-allocate-no-fetch
//!   scenario and the naive scheme's worst case (applu/swim);
//! * **spatial/temporal locality** — sets L1/L2 hit rates and therefore
//!   how much memory bandwidth the program itself needs.
//!
//! Generators are deterministic given a seed, so every figure in the
//! harness is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use miv_trace::Benchmark;
//!
//! let trace: Vec<_> = Benchmark::Mcf.trace(42).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! // Deterministic:
//! let again: Vec<_> = Benchmark::Mcf.trace(42).take(1000).collect();
//! assert_eq!(trace, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
pub mod file;
mod generator;
mod profile;
mod stats;

pub use benchmark::Benchmark;
pub use generator::TraceGenerator;
pub use profile::Profile;
pub use stats::TraceSummary;
