//! The stochastic trace generator.

use miv_cpu::{LoadDep, TraceInst};
use miv_obs::rng::Rng;

use crate::profile::Profile;

/// Word size accesses advance by within a sequential run.
const WORD: u64 = 8;
/// Cache-line granularity assumed for streaming whole-line overwrites.
const LINE: u64 = 64;

/// A deterministic, infinite instruction stream for one [`Profile`].
///
/// Implements [`Iterator`] over [`TraceInst`]; drive it into
/// `miv_cpu::Core::run` via `.take(n)`.
///
/// Accesses walk word-by-word through *sequential runs* whose lengths are
/// geometric with mean [`Profile::run_words`]; a finished run jumps to a
/// fresh location in the hot or cold region. Store runs in streaming
/// profiles align to cache lines and overwrite them fully, producing the
/// `full_line` stores the §5.3 optimization exploits.
///
/// # Examples
///
/// ```
/// use miv_trace::{Profile, TraceGenerator};
///
/// let gen = TraceGenerator::new(Profile::streaming_scan("scan", 1 << 20), 7);
/// let window: Vec<_> = gen.take(100).collect();
/// assert!(window.iter().any(|i| i.is_mem()));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: Profile,
    rng: Rng,
    /// Current sequential cursor (absolute address).
    cursor: u64,
    /// Words remaining in the current sequential run.
    run_left: u32,
    /// Whether the current run is a whole-line streaming store run.
    store_run: bool,
}

impl TraceGenerator {
    /// Creates a generator for `profile` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid (see [`Profile::validate`]).
    pub fn new(profile: Profile, seed: u64) -> Self {
        profile.validate();
        let mut rng = Rng::seed_from_u64(seed ^ 0x6d69_765f_7472 /* "miv_tr" */);
        let cursor = rng.gen_range_u64(0, profile.working_set) & !(WORD - 1);
        let mut gen = TraceGenerator {
            profile,
            rng,
            cursor,
            run_left: 0,
            store_run: false,
        };
        gen.start_run(false);
        gen
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Jumps to a new location and draws a fresh run length.
    fn start_run(&mut self, streaming_store: bool) {
        let p = self.profile;
        // Region pick: far (long reuse distance), hot (tight reuse), or
        // the capacity-interesting mid region.
        let r: f64 = self.rng.gen_f64();
        let region = if r < p.far_fraction {
            p.working_set
        } else if r < p.far_fraction + p.hot_fraction && p.hot_set >= 4096 {
            p.hot_set
        } else {
            p.mid_set
        };
        self.cursor = self.rng.gen_range_u64(0, region) & !(WORD - 1);
        // Geometric-ish run length with the configured mean (at least 1).
        let mean = p.run_words.max(1) as f64;
        let u: f64 = self.rng.gen_f64();
        self.run_left = ((-mean * (1.0 - u).ln()).ceil() as u32).clamp(1, 1 << 20);
        self.store_run = streaming_store;
        if streaming_store {
            // Align to a line boundary and cover whole lines.
            self.cursor &= !(LINE - 1);
            self.run_left = self.run_left.max((LINE / WORD) as u32);
            // Round the run up to whole lines so every line it touches is
            // fully overwritten.
            let wpl = (LINE / WORD) as u32;
            self.run_left = self.run_left.div_ceil(wpl) * wpl;
        }
    }

    /// Returns the current address and advances the run.
    fn step(&mut self) -> u64 {
        let addr = self.cursor % self.profile.working_set;
        self.cursor += WORD;
        self.run_left = self.run_left.saturating_sub(1);
        addr
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        let p = self.profile;
        if p.branch_fraction > 0.0 && self.rng.gen_bool(p.branch_fraction) {
            return Some(if self.rng.gen_bool(p.mispredict_rate) {
                TraceInst::branch_mispredicted()
            } else {
                TraceInst::branch()
            });
        }
        // Scale so the overall memory share stays near `mem_fraction`
        // despite the branch draw happening first.
        let mem_p = (p.mem_fraction / (1.0 - p.branch_fraction)).min(1.0);
        if !self.rng.gen_bool(mem_p) {
            return Some(TraceInst::compute());
        }
        if self.run_left == 0 {
            // A fresh run; streaming-store runs start with probability
            // `streaming_stores` scaled by the write fraction so the
            // overall store share stays near `write_fraction`.
            let streaming = p.streaming_stores > 0.0
                && self.rng.gen_bool(p.streaming_stores * p.write_fraction);
            self.start_run(streaming);
        }
        if self.store_run {
            let addr = self.step();
            return Some(TraceInst::store_full_line(addr));
        }
        // Within ordinary runs the store share is scaled down by the
        // streaming share, keeping the overall store fraction near
        // `write_fraction` while streaming profiles emit most of their
        // stores as whole-line runs.
        let is_store = self
            .rng
            .gen_bool(p.write_fraction * (1.0 - p.streaming_stores));
        let addr = self.step();
        if is_store {
            Some(TraceInst::store(addr))
        } else {
            let dep = if self.rng.gen_bool(p.pointer_chase) {
                LoadDep::OnLoadsAgo(1)
            } else {
                LoadDep::Independent
            };
            Some(TraceInst::load_dep(addr, dep))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miv_cpu::TraceOp;

    fn count_kinds(profile: Profile, n: usize) -> (usize, usize, usize, usize) {
        let gen = TraceGenerator::new(profile, 1);
        let mut loads = 0;
        let mut stores = 0;
        let mut computes = 0;
        let mut chases = 0;
        for inst in gen.take(n) {
            match inst.op {
                TraceOp::Compute { .. } => computes += 1,
                TraceOp::Load { dep, .. } => {
                    loads += 1;
                    if dep != LoadDep::Independent {
                        chases += 1;
                    }
                }
                TraceOp::Store { .. } => stores += 1,
                TraceOp::Branch { .. } | TraceOp::CryptoBarrier => {}
            }
        }
        (loads, stores, computes, chases)
    }

    #[test]
    fn mem_fraction_is_respected() {
        let p = Profile::cache_friendly("t", 1 << 20);
        let (l, s, _c, _) = count_kinds(p, 100_000);
        let mem_frac = (l + s) as f64 / 100_000.0;
        assert!(
            (mem_frac - p.mem_fraction).abs() < 0.02,
            "mem_frac = {mem_frac}"
        );
        let wr_frac = s as f64 / (l + s) as f64;
        // Streaming runs perturb the store share somewhat.
        assert!(
            (wr_frac - p.write_fraction).abs() < 0.15,
            "wr_frac = {wr_frac}"
        );
    }

    #[test]
    fn pointer_chaser_emits_dependent_loads() {
        let p = Profile::pointer_chaser("t", 16 << 20);
        let (l, _, _, chases) = count_kinds(p, 50_000);
        let frac = chases as f64 / l as f64;
        assert!((frac - p.pointer_chase).abs() < 0.05, "chase frac = {frac}");
        let friendly = Profile::streaming_scan("s", 16 << 20);
        let (_, _, _, none) = count_kinds(friendly, 50_000);
        assert_eq!(none, 0);
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let p = Profile::streaming_scan("t", 1 << 20);
        for inst in TraceGenerator::new(p, 3).take(50_000) {
            match inst.op {
                TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } => {
                    assert!(addr < p.working_set, "addr {addr:#x}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Profile::cache_friendly("t", 1 << 20);
        let a: Vec<_> = TraceGenerator::new(p, 9).take(5000).collect();
        let b: Vec<_> = TraceGenerator::new(p, 9).take(5000).collect();
        let c: Vec<_> = TraceGenerator::new(p, 10).take(5000).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_profile_emits_full_line_stores() {
        // Shorter runs than the applu/swim profiles so the sample holds
        // enough runs for the full/partial ratio to be stable.
        let p = Profile {
            run_words: 256,
            ..Profile::streaming_scan("t", 8 << 20)
        };
        let mut full = 0;
        let mut partial = 0;
        for inst in TraceGenerator::new(p, 5).take(300_000) {
            if let TraceOp::Store { full_line, .. } = inst.op {
                if full_line {
                    full += 1;
                } else {
                    partial += 1;
                }
            }
        }
        assert!(
            full > partial,
            "streaming scan: {full} full vs {partial} partial"
        );
        // Cache-friendly code writes mostly partial lines.
        let p2 = Profile::cache_friendly("t2", 1 << 20);
        let mut full2 = 0;
        let mut partial2 = 0;
        for inst in TraceGenerator::new(p2, 5).take(100_000) {
            if let TraceOp::Store { full_line, .. } = inst.op {
                if full_line {
                    full2 += 1;
                } else {
                    partial2 += 1;
                }
            }
        }
        assert!(partial2 > full2);
    }

    #[test]
    fn streaming_run_covers_whole_line() {
        // Within a streaming run, consecutive full-line stores walk every
        // word of a line.
        let p = Profile::streaming_scan("t", 1 << 20);
        let insts: Vec<_> = TraceGenerator::new(p, 11).take(200_000).collect();
        let mut run: Vec<u64> = Vec::new();
        let mut saw_complete_run = false;
        for inst in insts {
            if let TraceOp::Store {
                addr,
                full_line: true,
            } = inst.op
            {
                if let Some(&last) = run.last() {
                    if addr == last + WORD {
                        run.push(addr);
                    } else {
                        run = vec![addr];
                    }
                } else {
                    run = vec![addr];
                }
                if run.len() == (LINE / WORD) as usize && run[0].is_multiple_of(LINE) {
                    saw_complete_run = true;
                    break;
                }
            }
        }
        assert!(saw_complete_run, "no complete line-overwrite run observed");
    }

    #[test]
    fn long_runs_reuse_lines() {
        // With a long mean run, consecutive memory accesses land on the
        // same 64-B line most of the time (spatial locality).
        let long = Profile {
            run_words: 1024,
            ..Profile::cache_friendly("l", 8 << 20)
        };
        let short = Profile {
            run_words: 2,
            ..Profile::cache_friendly("s", 8 << 20)
        };
        let same_line_frac = |p: Profile| {
            let mut prev: Option<u64> = None;
            let mut same = 0u32;
            let mut total = 0u32;
            for inst in TraceGenerator::new(p, 13).take(100_000) {
                if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = inst.op {
                    if let Some(pl) = prev {
                        total += 1;
                        if addr / LINE == pl {
                            same += 1;
                        }
                    }
                    prev = Some(addr / LINE);
                }
            }
            same as f64 / total as f64
        };
        assert!(same_line_frac(long) > 0.8);
        assert!(same_line_frac(short) < 0.6);
    }
}
