//! The nine SPEC CPU2000 benchmarks of the paper's evaluation (§6.3),
//! as calibrated synthetic profiles.

use crate::generator::TraceGenerator;
use crate::profile::Profile;

/// One of the paper's nine SPEC CPU2000 benchmarks.
///
/// The profiles are calibrated so that, under the Table 1 machine, the
/// benchmarks land in the paper's qualitative groups:
///
/// * `gcc`, `gzip` — cache-friendly integer codes, little verification
///   overhead anywhere;
/// * `twolf`, `vortex`, `vpr` — working sets near the small L2 sizes, so
///   **cache contention** from hash lines is their main penalty (Fig. 4);
/// * `mcf` — enormous pointer-chasing working set: the worst chash
///   slowdown at 256 KB (latency- and bandwidth-bound);
/// * `applu`, `art`, `swim` — streaming FP codes that never fit: maximal
///   **bandwidth pollution**, and ~10× slowdowns under the naive scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Gcc,
    Gzip,
    Mcf,
    Twolf,
    Vortex,
    Vpr,
    Applu,
    Art,
    Swim,
}

impl Benchmark {
    /// All nine benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Twolf,
        Benchmark::Vortex,
        Benchmark::Vpr,
        Benchmark::Applu,
        Benchmark::Art,
        Benchmark::Swim,
    ];

    /// The benchmark's SPEC name.
    pub fn name(&self) -> &'static str {
        self.profile().name
    }

    /// The calibrated synthetic profile.
    pub fn profile(&self) -> Profile {
        match self {
            Benchmark::Gcc => Profile {
                name: "gcc",
                working_set: 8 << 20,
                hot_set: 96 << 10,
                hot_fraction: 0.87,
                mid_set: 768 << 10,
                far_fraction: 0.015,
                mem_fraction: 0.38,
                write_fraction: 0.30,
                run_words: 64,
                pointer_chase: 0.1,
                streaming_stores: 0.05,
                branch_fraction: 0.18,
                mispredict_rate: 0.08,
            },
            Benchmark::Gzip => Profile {
                name: "gzip",
                working_set: 8 << 20,
                hot_set: 96 << 10,
                hot_fraction: 0.86,
                mid_set: 640 << 10,
                far_fraction: 0.01,
                mem_fraction: 0.30,
                write_fraction: 0.25,
                run_words: 256,
                pointer_chase: 0.0,
                streaming_stores: 0.25,
                branch_fraction: 0.13,
                mispredict_rate: 0.08,
            },
            Benchmark::Mcf => Profile {
                name: "mcf",
                working_set: 16 << 20,
                hot_set: 64 << 10,
                hot_fraction: 0.7,
                mid_set: 16 << 20,
                far_fraction: 0.0,
                mem_fraction: 0.33,
                write_fraction: 0.15,
                run_words: 32,
                pointer_chase: 0.9,
                streaming_stores: 0.0,
                branch_fraction: 0.17,
                mispredict_rate: 0.09,
            },
            Benchmark::Twolf => Profile {
                name: "twolf",
                working_set: 8 << 20,
                hot_set: 64 << 10,
                hot_fraction: 0.88,
                mid_set: 768 << 10,
                far_fraction: 0.012,
                mem_fraction: 0.36,
                write_fraction: 0.25,
                run_words: 12,
                pointer_chase: 0.3,
                streaming_stores: 0.0,
                branch_fraction: 0.14,
                mispredict_rate: 0.11,
            },
            Benchmark::Vortex => Profile {
                name: "vortex",
                working_set: 8 << 20,
                hot_set: 64 << 10,
                hot_fraction: 0.88,
                mid_set: 1280 << 10,
                far_fraction: 0.015,
                mem_fraction: 0.37,
                write_fraction: 0.30,
                run_words: 32,
                pointer_chase: 0.15,
                streaming_stores: 0.05,
                branch_fraction: 0.16,
                mispredict_rate: 0.05,
            },
            Benchmark::Vpr => Profile {
                name: "vpr",
                working_set: 8 << 20,
                hot_set: 64 << 10,
                hot_fraction: 0.88,
                mid_set: 640 << 10,
                far_fraction: 0.01,
                mem_fraction: 0.36,
                write_fraction: 0.26,
                run_words: 16,
                pointer_chase: 0.25,
                streaming_stores: 0.0,
                branch_fraction: 0.14,
                mispredict_rate: 0.1,
            },
            Benchmark::Applu => Profile {
                name: "applu",
                working_set: 40 << 20,
                hot_set: 128 << 10,
                hot_fraction: 0.87,
                mid_set: 40 << 20,
                far_fraction: 0.0,
                mem_fraction: 0.40,
                write_fraction: 0.35,
                run_words: 2048,
                pointer_chase: 0.0,
                streaming_stores: 0.75,
                branch_fraction: 0.02,
                mispredict_rate: 0.01,
            },
            Benchmark::Art => Profile {
                name: "art",
                working_set: 8 << 20,
                hot_set: 128 << 10,
                hot_fraction: 0.88,
                mid_set: 8 << 20,
                far_fraction: 0.0,
                mem_fraction: 0.36,
                write_fraction: 0.10,
                run_words: 1024,
                pointer_chase: 0.1,
                streaming_stores: 0.05,
                branch_fraction: 0.08,
                mispredict_rate: 0.03,
            },
            Benchmark::Swim => Profile {
                name: "swim",
                working_set: 48 << 20,
                hot_set: 128 << 10,
                hot_fraction: 0.86,
                mid_set: 48 << 20,
                far_fraction: 0.0,
                mem_fraction: 0.36,
                write_fraction: 0.38,
                run_words: 2048,
                pointer_chase: 0.0,
                streaming_stores: 0.8,
                branch_fraction: 0.02,
                mispredict_rate: 0.01,
            },
        }
    }

    /// A deterministic trace generator for this benchmark.
    pub fn trace(&self, seed: u64) -> TraceGenerator {
        TraceGenerator::new(self.profile(), seed)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::ALL {
            b.profile().validate();
            assert!(!b.name().is_empty());
        }
    }

    #[test]
    fn names_match_spec() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            ["gcc", "gzip", "mcf", "twolf", "vortex", "vpr", "applu", "art", "swim"]
        );
        assert_eq!(Benchmark::Mcf.to_string(), "mcf");
    }

    #[test]
    fn group_characteristics() {
        // Bandwidth-bound group has large working sets.
        for b in [Benchmark::Mcf, Benchmark::Applu, Benchmark::Swim] {
            assert!(b.profile().working_set >= 16 << 20, "{b}");
        }
        // Contention group's capacity-interesting region straddles the
        // L2 sweep (their far region is a thin long-distance trickle).
        for b in [Benchmark::Twolf, Benchmark::Vpr] {
            let p = b.profile();
            assert!(p.mid_set <= 2 << 20, "{b}");
            assert!(p.far_fraction < 0.05, "{b}");
        }
        // Only mcf chases pointers heavily; the FP streamers barely.
        assert!(Benchmark::Mcf.profile().pointer_chase >= 0.4);
        for b in [Benchmark::Applu, Benchmark::Swim, Benchmark::Art] {
            assert!(b.profile().pointer_chase <= 0.1, "{b}");
        }
        // The FP streamers stream.
        for b in [Benchmark::Applu, Benchmark::Swim] {
            assert!(b.profile().streaming_stores >= 0.5, "{b}");
        }
    }
}
