//! Trace summarization utilities.

use miv_cpu::{LoadDep, TraceInst, TraceOp};

/// Aggregate statistics over a trace window.
///
/// # Examples
///
/// ```
/// use miv_trace::{Benchmark, TraceSummary};
///
/// let summary = TraceSummary::from_trace(Benchmark::Swim.trace(1).take(10_000));
/// assert!(summary.mem_fraction() > 0.3);
/// assert!(summary.unique_lines(64) > 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total instructions.
    pub instructions: u64,
    /// Loads observed.
    pub loads: u64,
    /// Stores observed.
    pub stores: u64,
    /// Dependent (pointer-chasing) loads.
    pub dependent_loads: u64,
    /// Whole-line streaming stores.
    pub full_line_stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Addresses touched (for footprint estimation).
    addrs: Vec<u64>,
}

impl TraceSummary {
    /// Builds a summary from a trace window.
    pub fn from_trace<I: IntoIterator<Item = TraceInst>>(trace: I) -> Self {
        let mut s = TraceSummary::default();
        for inst in trace {
            s.instructions += 1;
            match inst.op {
                TraceOp::Load { addr, dep } => {
                    s.loads += 1;
                    if dep != LoadDep::Independent {
                        s.dependent_loads += 1;
                    }
                    s.addrs.push(addr);
                }
                TraceOp::Store { addr, full_line } => {
                    s.stores += 1;
                    if full_line {
                        s.full_line_stores += 1;
                    }
                    s.addrs.push(addr);
                }
                TraceOp::Branch { mispredicted } => {
                    s.branches += 1;
                    if mispredicted {
                        s.mispredicts += 1;
                    }
                }
                _ => {}
            }
        }
        s
    }

    /// Fraction of instructions that touch memory.
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.instructions as f64
        }
    }

    /// Number of distinct cache lines touched at the given line size.
    pub fn unique_lines(&self, line_bytes: u64) -> usize {
        let mut lines: Vec<u64> = self.addrs.iter().map(|a| a / line_bytes).collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Footprint in bytes at the given line size.
    pub fn footprint(&self, line_bytes: u64) -> u64 {
        self.unique_lines(line_bytes) as u64 * line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;

    #[test]
    fn summary_counts() {
        let s = TraceSummary::from_trace(vec![
            TraceInst::compute(),
            TraceInst::load(0),
            TraceInst::load_dep(64, LoadDep::OnLoadsAgo(1)),
            TraceInst::store_full_line(128),
            TraceInst::store(8),
        ]);
        assert_eq!(s.instructions, 5);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 2);
        assert_eq!(s.dependent_loads, 1);
        assert_eq!(s.full_line_stores, 1);
        assert_eq!(s.unique_lines(64), 3);
        assert_eq!(s.footprint(64), 192);
        assert!((s.mem_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_summary() {
        let s = TraceSummary::from_trace(Vec::new());
        assert_eq!(s.mem_fraction(), 0.0);
        assert_eq!(s.unique_lines(64), 0);
    }

    #[test]
    fn big_benchmarks_have_big_footprints() {
        // Streaming benchmarks keep touching new lines; vpr's footprint
        // saturates at its capacity-interesting mid region. The window
        // must be long enough for swim's linear growth to clear vpr's
        // plateau.
        let n = 3_000_000;
        let swim = TraceSummary::from_trace(Benchmark::Swim.trace(2).take(n));
        let vpr = TraceSummary::from_trace(Benchmark::Vpr.trace(2).take(n));
        assert!(
            swim.footprint(64) as f64 > 1.4 * vpr.footprint(64) as f64,
            "swim {} vs vpr {}",
            swim.footprint(64),
            vpr.footprint(64)
        );
    }
}
