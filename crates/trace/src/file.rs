//! A compact binary on-disk trace format.
//!
//! The simulator is trace-driven; besides the synthetic generators, traces
//! can be recorded once and replayed from disk — useful for sharing exact
//! workloads, regression-pinning a measurement, or feeding externally
//! captured address streams into the machine.
//!
//! Format: an 8-byte magic (`MIVTRC01`), a little-endian `u64` record
//! count, then one record per instruction:
//!
//! ```text
//! tag 0x00: compute     + u8 latency
//! tag 0x01: load        + u64 address + u8 loads-ago dependency (0 = none)
//! tag 0x02: store       + u64 address + u8 full-line flag
//! tag 0x03: crypto barrier
//! ```
//!
//! # Examples
//!
//! ```
//! use miv_trace::file::{read_trace, write_trace};
//! use miv_trace::Benchmark;
//!
//! let window: Vec<_> = Benchmark::Gzip.trace(3).take(1000).collect();
//! let mut buf = Vec::new();
//! write_trace(&mut buf, window.iter().copied())?;
//! let back: Vec<_> = read_trace(buf.as_slice())?.collect::<Result<_, _>>()?;
//! assert_eq!(back, window);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{self, Read, Write};

use miv_cpu::{LoadDep, TraceInst, TraceOp};

/// File magic: "MIVTRC" + format version "01".
pub const MAGIC: [u8; 8] = *b"MIVTRC01";

const TAG_COMPUTE: u8 = 0x00;
const TAG_LOAD: u8 = 0x01;
const TAG_STORE: u8 = 0x02;
const TAG_BARRIER: u8 = 0x03;
const TAG_BRANCH: u8 = 0x04;

/// Writes a trace to `w`, returning the number of records written.
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W, I>(mut w: W, insts: I) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = TraceInst>,
{
    // Buffer the body so the count header can be exact without a seek.
    let mut body = Vec::new();
    let mut count = 0u64;
    for inst in insts {
        match inst.op {
            TraceOp::Compute { latency } => {
                body.push(TAG_COMPUTE);
                body.push(latency);
            }
            TraceOp::Load { addr, dep } => {
                body.push(TAG_LOAD);
                body.extend_from_slice(&addr.to_le_bytes());
                body.push(match dep {
                    LoadDep::Independent => 0,
                    LoadDep::OnLoadsAgo(n) => n,
                });
            }
            TraceOp::Store { addr, full_line } => {
                body.push(TAG_STORE);
                body.extend_from_slice(&addr.to_le_bytes());
                body.push(full_line as u8);
            }
            TraceOp::CryptoBarrier => body.push(TAG_BARRIER),
            TraceOp::Branch { mispredicted } => {
                body.push(TAG_BRANCH);
                body.push(mispredicted as u8);
            }
        }
        count += 1;
    }
    w.write_all(&MAGIC)?;
    w.write_all(&count.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(count)
}

/// A streaming reader over a trace file.
///
/// Yields `io::Result<TraceInst>`; a malformed record surfaces as an
/// `InvalidData` error.
#[derive(Debug)]
pub struct TraceFileReader<R> {
    reader: R,
    remaining: u64,
}

impl<R: Read> TraceFileReader<R> {
    /// Records remaining to be read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn read_u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.reader.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn read_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.reader.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_record(&mut self) -> io::Result<TraceInst> {
        let tag = self.read_u8()?;
        let inst = match tag {
            TAG_COMPUTE => {
                let latency = self.read_u8()?;
                if latency == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "compute record with zero latency",
                    ));
                }
                TraceInst::compute_latency(latency)
            }
            TAG_LOAD => {
                let addr = self.read_u64()?;
                let dep = match self.read_u8()? {
                    0 => LoadDep::Independent,
                    n => LoadDep::OnLoadsAgo(n),
                };
                TraceInst::load_dep(addr, dep)
            }
            TAG_STORE => {
                let addr = self.read_u64()?;
                match self.read_u8()? {
                    0 => TraceInst::store(addr),
                    1 => TraceInst::store_full_line(addr),
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("store record with invalid flag {other}"),
                        ))
                    }
                }
            }
            TAG_BARRIER => TraceInst::crypto_barrier(),
            TAG_BRANCH => match self.read_u8()? {
                0 => TraceInst::branch(),
                1 => TraceInst::branch_mispredicted(),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("branch record with invalid flag {other}"),
                    ))
                }
            },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown record tag {other:#x}"),
                ))
            }
        };
        Ok(inst)
    }
}

impl<R: Read> Iterator for TraceFileReader<R> {
    type Item = io::Result<TraceInst>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.read_record())
    }
}

/// Opens a trace for streaming reads, validating the header.
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic, and propagates reader I/O
/// errors.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<TraceFileReader<R>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a miv trace file",
        ));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    Ok(TraceFileReader {
        reader: r,
        remaining: u64::from_le_bytes(count),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;

    #[test]
    fn roundtrip_all_record_kinds() {
        let insts = vec![
            TraceInst::compute(),
            TraceInst::compute_latency(7),
            TraceInst::load(0xdead_beef_0120),
            TraceInst::load_dep(0x40, LoadDep::OnLoadsAgo(3)),
            TraceInst::store(0x80),
            TraceInst::store_full_line(0xc0),
            TraceInst::branch(),
            TraceInst::branch_mispredicted(),
            TraceInst::crypto_barrier(),
        ];
        let mut buf = Vec::new();
        assert_eq!(write_trace(&mut buf, insts.iter().copied()).unwrap(), 9);
        let reader = read_trace(buf.as_slice()).unwrap();
        assert_eq!(reader.remaining(), 9);
        let back: Vec<_> = reader.collect::<Result<_, _>>().unwrap();
        assert_eq!(back, insts);
    }

    #[test]
    fn roundtrip_generated_trace() {
        let window: Vec<_> = Benchmark::Mcf.trace(11).take(20_000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, window.iter().copied()).unwrap();
        let back: Vec<_> = read_trace(buf.as_slice())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, window);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOTATRACE........."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(0xff);
        let got: Vec<_> = read_trace(buf.as_slice()).unwrap().collect();
        assert!(got[0].is_err());
    }

    #[test]
    fn truncated_file_errors_cleanly() {
        let insts = vec![TraceInst::load(0x1234)];
        let mut buf = Vec::new();
        write_trace(&mut buf, insts).unwrap();
        buf.truncate(buf.len() - 3);
        let got: Vec<_> = read_trace(buf.as_slice()).unwrap().collect();
        assert!(got[0].is_err());
    }

    #[test]
    fn empty_trace() {
        let mut buf = Vec::new();
        assert_eq!(write_trace(&mut buf, Vec::new()).unwrap(), 0);
        let mut reader = read_trace(buf.as_slice()).unwrap();
        assert!(reader.next().is_none());
    }
}
