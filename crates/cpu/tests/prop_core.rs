//! Randomized property tests for the out-of-order core model, driven by
//! the workspace's deterministic PRNG (`miv_obs::rng`).

use miv_cpu::{Core, CoreConfig, FixedLatencyPort, LoadDep, TraceInst};
use miv_obs::rng::Rng;

fn random_inst(rng: &mut Rng) -> TraceInst {
    match rng.pick_weighted(&[4, 1, 3, 1, 2]) {
        0 => TraceInst::compute(),
        1 => TraceInst::compute_latency(rng.gen_range_u64(1, 12) as u8),
        2 => TraceInst::load(rng.gen_range_u64(0, 1 << 20) & !7),
        3 => TraceInst::load_dep(
            rng.gen_range_u64(0, 1 << 20) & !7,
            LoadDep::OnLoadsAgo(rng.gen_range_u64(1, 4) as u8),
        ),
        _ => TraceInst::store(rng.gen_range_u64(0, 1 << 20) & !7),
    }
}

fn random_trace(rng: &mut Rng, lo: usize, hi: usize) -> Vec<TraceInst> {
    let n = rng.gen_range_usize(lo, hi);
    (0..n).map(|_| random_inst(rng)).collect()
}

/// IPC never exceeds the commit width and every instruction commits.
#[test]
fn ipc_bounded_by_width() {
    let mut rng = Rng::seed_from_u64(0x1bc0);
    for _case in 0..48 {
        let trace = random_trace(&mut rng, 1, 2000);
        let latency = rng.gen_range_u64(0, 300);
        let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(latency));
        let n = trace.len() as u64;
        let stats = core.run(trace);
        assert_eq!(stats.instructions, n);
        assert!(stats.ipc() <= 4.0 + 1e-9, "ipc {}", stats.ipc());
    }
}

/// Slower memory never makes the program faster (monotonicity).
#[test]
fn slower_memory_is_never_faster() {
    let mut rng = Rng::seed_from_u64(0x510e);
    for _case in 0..32 {
        let trace = random_trace(&mut rng, 10, 800);
        let cycles = |latency| {
            let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(latency));
            core.run(trace.clone()).cycles
        };
        let fast = cycles(5);
        let slow = cycles(200);
        assert!(slow >= fast, "{slow} < {fast}");
    }
}

/// A bigger window never hurts (monotonicity in RUU size).
#[test]
fn bigger_window_never_hurts() {
    let mut rng = Rng::seed_from_u64(0xb166);
    for _case in 0..32 {
        let trace = random_trace(&mut rng, 10, 800);
        let cycles = |ruu: u32, lsq: u32| {
            let cfg = CoreConfig {
                ruu_size: ruu,
                lsq_size: lsq,
                ..Default::default()
            };
            let mut core = Core::new(cfg, FixedLatencyPort::new(120));
            core.run(trace.clone()).cycles
        };
        assert!(cycles(16, 8) >= cycles(128, 64));
    }
}

/// Splitting a trace across two `run` calls commits the same totals as
/// one call (segment accounting is exact).
#[test]
fn segmented_runs_commit_everything() {
    let mut rng = Rng::seed_from_u64(0x5e63);
    for _case in 0..48 {
        let trace = random_trace(&mut rng, 2, 600);
        let cut = rng.gen_range_usize(0, trace.len() + 1);
        let mut whole = Core::new(CoreConfig::default(), FixedLatencyPort::new(50));
        let w = whole.run(trace.clone());

        let mut split = Core::new(CoreConfig::default(), FixedLatencyPort::new(50));
        let a = split.run(trace[..cut].to_vec());
        let b = split.run(trace[cut..].to_vec());
        assert_eq!(a.instructions + b.instructions, w.instructions);
        assert_eq!(a.loads + b.loads, w.loads);
        assert_eq!(a.stores + b.stores, w.stores);
        // The final clock must agree (scheduling state carries over).
        assert_eq!(split.now(), whole.now());
    }
}

/// The port sees exactly the trace's loads and stores.
#[test]
fn port_sees_all_memory_ops() {
    let mut rng = Rng::seed_from_u64(0x9027);
    for _case in 0..48 {
        let trace = random_trace(&mut rng, 1, 600);
        let loads = trace
            .iter()
            .filter(|i| matches!(i.op, miv_cpu::TraceOp::Load { .. }))
            .count();
        let stores = trace
            .iter()
            .filter(|i| matches!(i.op, miv_cpu::TraceOp::Store { .. }))
            .count();
        let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(10));
        core.run(trace);
        assert_eq!(core.port().loads(), loads as u64);
        assert_eq!(core.port().stores(), stores as u64);
    }
}
