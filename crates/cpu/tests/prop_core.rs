//! Property tests for the out-of-order core model.

use miv_cpu::{Core, CoreConfig, FixedLatencyPort, LoadDep, TraceInst};
use proptest::prelude::*;

fn inst_strategy() -> impl Strategy<Value = TraceInst> {
    prop_oneof![
        4 => Just(TraceInst::compute()),
        1 => (1u8..12).prop_map(TraceInst::compute_latency),
        3 => (0u64..1 << 20).prop_map(|a| TraceInst::load(a & !7)),
        1 => (0u64..1 << 20, 1u8..4)
            .prop_map(|(a, n)| TraceInst::load_dep(a & !7, LoadDep::OnLoadsAgo(n))),
        2 => (0u64..1 << 20).prop_map(|a| TraceInst::store(a & !7)),
    ]
}

proptest! {
    /// IPC never exceeds the commit width and every instruction commits.
    #[test]
    fn ipc_bounded_by_width(
        trace in proptest::collection::vec(inst_strategy(), 1..2000),
        latency in 0u64..300,
    ) {
        let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(latency));
        let n = trace.len() as u64;
        let stats = core.run(trace);
        prop_assert_eq!(stats.instructions, n);
        prop_assert!(stats.ipc() <= 4.0 + 1e-9, "ipc {}", stats.ipc());
    }

    /// Slower memory never makes the program faster (monotonicity).
    #[test]
    fn slower_memory_is_never_faster(trace in proptest::collection::vec(inst_strategy(), 10..800)) {
        let cycles = |latency| {
            let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(latency));
            core.run(trace.clone()).cycles
        };
        let fast = cycles(5);
        let slow = cycles(200);
        prop_assert!(slow >= fast, "{slow} < {fast}");
    }

    /// A bigger window never hurts (monotonicity in RUU size).
    #[test]
    fn bigger_window_never_hurts(trace in proptest::collection::vec(inst_strategy(), 10..800)) {
        let cycles = |ruu: u32, lsq: u32| {
            let cfg = CoreConfig { ruu_size: ruu, lsq_size: lsq, ..Default::default() };
            let mut core = Core::new(cfg, FixedLatencyPort::new(120));
            core.run(trace.clone()).cycles
        };
        prop_assert!(cycles(16, 8) >= cycles(128, 64));
    }

    /// Splitting a trace across two `run` calls commits the same totals as
    /// one call (segment accounting is exact).
    #[test]
    fn segmented_runs_commit_everything(
        trace in proptest::collection::vec(inst_strategy(), 2..600),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((trace.len() as f64) * cut_frac) as usize;
        let mut whole = Core::new(CoreConfig::default(), FixedLatencyPort::new(50));
        let w = whole.run(trace.clone());

        let mut split = Core::new(CoreConfig::default(), FixedLatencyPort::new(50));
        let a = split.run(trace[..cut].to_vec());
        let b = split.run(trace[cut..].to_vec());
        prop_assert_eq!(a.instructions + b.instructions, w.instructions);
        prop_assert_eq!(a.loads + b.loads, w.loads);
        prop_assert_eq!(a.stores + b.stores, w.stores);
        // The final clock must agree (scheduling state carries over).
        prop_assert_eq!(split.now(), whole.now());
    }

    /// The port sees exactly the trace's loads and stores.
    #[test]
    fn port_sees_all_memory_ops(trace in proptest::collection::vec(inst_strategy(), 1..600)) {
        let loads = trace.iter().filter(|i| matches!(i.op, miv_cpu::TraceOp::Load { .. })).count();
        let stores = trace.iter().filter(|i| matches!(i.op, miv_cpu::TraceOp::Store { .. })).count();
        let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(10));
        core.run(trace);
        prop_assert_eq!(core.port().loads(), loads as u64);
        prop_assert_eq!(core.port().stores(), stores as u64);
    }
}
