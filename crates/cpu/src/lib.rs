//! A trace-driven out-of-order superscalar core timing model.
//!
//! Models the paper's processor (Table 1): 4-wide fetch/issue/commit, a
//! 128-entry register-update unit (instruction window), a 64-entry
//! load/store queue, non-blocking loads, and in-order commit. The paper
//! uses SimpleScalar executing Alpha SPEC binaries; we reproduce its
//! *timing* behaviour with an instruction-interval scheduling model driven
//! by synthetic traces (see `miv-trace`), which captures the three effects
//! the evaluation depends on:
//!
//! 1. **Window-limited memory-level parallelism** — independent misses
//!    overlap until the 128-entry window or the LSQ fills; dependent
//!    (pointer-chasing) loads serialize.
//! 2. **In-order commit** — a long-latency load at the window head stalls
//!    retirement, which is how memory latency becomes lost IPC.
//! 3. **Speculative execution past unverified data** (§5.8) — loads
//!    complete when *data* arrives, while integrity checking continues in
//!    the background; only crypto-barrier instructions wait for the
//!    verification horizon.
//!
//! The model is a single forward pass over the trace: for each
//! instruction it computes an issue slot (width- and window-constrained),
//! a completion time (from the [`MemoryPort`] for memory operations), and
//! an in-order commit slot. It is deterministic and runs at tens of
//! millions of instructions per second, which is what makes regenerating
//! every figure of the paper tractable.
//!
//! # Examples
//!
//! ```
//! use miv_cpu::{Core, CoreConfig, FixedLatencyPort, TraceInst};
//!
//! // A core attached to a perfect 10-cycle memory.
//! let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(10));
//! let trace = (0..1000).map(|i| {
//!     if i % 4 == 0 { TraceInst::load(i * 64) } else { TraceInst::compute() }
//! });
//! let stats = core.run(trace);
//! assert_eq!(stats.instructions, 1000);
//! assert!(stats.ipc() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_model;
mod inst;
mod port;

pub use core_model::{Core, CoreConfig, CoreStats};
pub use inst::{LoadDep, TraceInst, TraceOp};
pub use port::{FixedLatencyPort, MemoryPort};

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;
