//! The instruction-interval scheduling model of the out-of-order core.

use std::collections::VecDeque;

use crate::inst::{LoadDep, TraceInst, TraceOp};
use crate::port::MemoryPort;
use crate::Cycle;

/// Core pipeline parameters (Table 1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch/issue/commit width per cycle (Table 1: 4).
    pub width: u32,
    /// Instruction-window (register update unit) size (Table 1: 128).
    pub ruu_size: u32,
    /// Load/store queue size (Table 1: 64).
    pub lsq_size: u32,
    /// Cycles of fetch redirect after a mispredicted branch executes
    /// (an EV6-class front end; SimpleScalar's out-of-order model behaves
    /// similarly).
    pub mispredict_penalty: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            width: 4,
            ruu_size: 128,
            lsq_size: 64,
            mispredict_penalty: 7,
        }
    }
}

/// Committed-segment statistics returned by [`Core::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions committed in the segment.
    pub instructions: u64,
    /// Cycles elapsed from segment start to the last commit.
    pub cycles: Cycle,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Crypto barriers executed.
    pub barriers: u64,
    /// Branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles a load's memory issue waited on an address dependency.
    pub dep_wait_cycles: Cycle,
}

impl CoreStats {
    /// Instructions per cycle for the segment.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The out-of-order core model.
///
/// The model performs one forward pass over the trace. For instruction
/// *i* it computes:
///
/// * an **issue slot**, constrained by the issue width and by window
///   space (instruction *i* issues only after instruction *i − RUU* has
///   committed);
/// * a **completion time** — compute latency, or the [`MemoryPort`]'s
///   answer for loads (address-dependent loads wait for their producer
///   load's data first, which is how pointer chasing serializes misses);
/// * an **in-order commit slot**, constrained by the commit width and by
///   the completion of the instruction itself and all predecessors.
///
/// IPC falls out as instructions divided by the cycle of the last commit.
///
/// # Examples
///
/// ```
/// use miv_cpu::{Core, CoreConfig, FixedLatencyPort, TraceInst};
///
/// let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(0));
/// let stats = core.run((0..400).map(|_| TraceInst::compute()));
/// // Pure ALU code commits at full width.
/// assert!(stats.ipc() > 3.5);
/// ```
#[derive(Debug)]
pub struct Core<P> {
    config: CoreConfig,
    port: P,
    /// Next issue slot (slot units: `width` slots per cycle).
    next_issue_slot: u64,
    /// Last commit slot granted.
    last_commit_slot: u64,
    /// Commit slots of the youngest `ruu_size` instructions.
    rob: VecDeque<u64>,
    /// Completion cycles of in-flight/recent memory ops (LSQ occupancy).
    lsq: VecDeque<Cycle>,
    /// Completion cycles of recent loads, youngest first (dep tracking).
    recent_loads: VecDeque<Cycle>,
    /// Earliest issue slot after the most recent fetch redirect.
    fetch_resume_slot: u64,
}

impl<P: MemoryPort> Core<P> {
    /// Creates a core attached to a memory hierarchy.
    pub fn new(config: CoreConfig, port: P) -> Self {
        assert!(config.width >= 1, "width must be at least 1");
        assert!(config.ruu_size >= config.width, "window smaller than width");
        assert!(config.lsq_size >= 1, "LSQ must hold at least one entry");
        Core {
            config,
            port,
            next_issue_slot: 0,
            last_commit_slot: 0,
            rob: VecDeque::with_capacity(config.ruu_size as usize),
            lsq: VecDeque::with_capacity(config.lsq_size as usize),
            recent_loads: VecDeque::with_capacity(256),
            fetch_resume_slot: 0,
        }
    }

    /// The attached memory hierarchy.
    pub fn port(&self) -> &P {
        &self.port
    }

    /// Mutable access to the hierarchy (e.g. to read its statistics).
    pub fn port_mut(&mut self) -> &mut P {
        &mut self.port
    }

    /// The cycle of the most recent commit.
    pub fn now(&self) -> Cycle {
        self.last_commit_slot / self.config.width as u64
    }

    /// Runs the core over `trace`, returning statistics for this segment.
    ///
    /// May be called repeatedly; pipeline state (window occupancy, LSQ,
    /// scheduling clock) carries over, so a warm-up segment can precede a
    /// measurement segment.
    pub fn run<I>(&mut self, trace: I) -> CoreStats
    where
        I: IntoIterator<Item = TraceInst>,
    {
        let width = self.config.width as u64;
        let start_cycle = self.now();
        let mut stats = CoreStats::default();

        for inst in trace {
            // --- Issue: width and window constraints. ---
            let mut issue_slot = self.next_issue_slot.max(self.fetch_resume_slot);
            if self.rob.len() == self.config.ruu_size as usize {
                let oldest_commit = self.rob.pop_front().expect("rob non-empty");
                // Window entry frees the slot after the oldest commits.
                issue_slot = issue_slot.max(oldest_commit + 1);
            }
            self.next_issue_slot = issue_slot + 1;
            let issue_cycle = issue_slot / width;

            // --- Execute. ---
            let completion = match inst.op {
                TraceOp::Compute { latency } => issue_cycle + latency as Cycle,
                TraceOp::Load { addr, dep } => {
                    let mut ready = issue_cycle;
                    if let LoadDep::OnLoadsAgo(n) = dep {
                        if n >= 1 {
                            if let Some(&producer) = self.recent_loads.get(n as usize - 1) {
                                if producer > ready {
                                    stats.dep_wait_cycles += producer - ready;
                                    ready = producer;
                                }
                            }
                        }
                    }
                    ready = self.reserve_lsq(ready);
                    let data = self.port.load(ready, addr);
                    self.lsq.push_back(data);
                    self.recent_loads.push_front(data);
                    self.recent_loads.truncate(255);
                    stats.loads += 1;
                    data
                }
                TraceOp::Store { addr, full_line } => {
                    let ready = self.reserve_lsq(issue_cycle);
                    let accepted = self.port.store(ready, addr, full_line);
                    // Stores retire from the LSQ once accepted.
                    self.lsq.push_back(accepted.max(ready));
                    stats.stores += 1;
                    issue_cycle + 1
                }
                TraceOp::Branch { mispredicted } => {
                    stats.branches += 1;
                    let done = issue_cycle + 1;
                    if mispredicted {
                        stats.mispredicts += 1;
                        // Fetch redirect: younger instructions cannot issue
                        // until the branch resolves plus the penalty.
                        self.fetch_resume_slot =
                            (done + self.config.mispredict_penalty as Cycle) * width;
                    }
                    done
                }
                TraceOp::CryptoBarrier => {
                    stats.barriers += 1;
                    (issue_cycle + 1).max(self.port.verification_horizon())
                }
            };

            // --- Commit: in order, width-limited. ---
            let commit_slot = (self.last_commit_slot + 1).max(completion * width);
            self.last_commit_slot = commit_slot;
            self.rob.push_back(commit_slot);
            stats.instructions += 1;
        }

        stats.cycles = self.now().saturating_sub(start_cycle);
        stats
    }

    /// Allocates an LSQ entry for an op whose address is ready at `ready`;
    /// if the queue is full the op waits for the oldest entry to drain.
    fn reserve_lsq(&mut self, ready: Cycle) -> Cycle {
        if self.lsq.len() == self.config.lsq_size as usize {
            let oldest = self.lsq.pop_front().expect("lsq non-empty");
            ready.max(oldest)
        } else {
            ready
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::FixedLatencyPort;

    fn run_trace(latency: Cycle, trace: Vec<TraceInst>) -> CoreStats {
        let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(latency));
        core.run(trace)
    }

    #[test]
    fn alu_code_commits_at_full_width() {
        let stats = run_trace(0, vec![TraceInst::compute(); 4000]);
        assert!(stats.ipc() > 3.9, "ipc = {}", stats.ipc());
    }

    #[test]
    fn long_latency_compute_serializes_commit() {
        // Width 4 but every instruction takes 8 cycles and commit is in
        // order; ILP across instructions still allows 4 per cycle since
        // they're independent — completion times all equal issue+8, so
        // commit runs at full width after a pipeline fill.
        let stats = run_trace(0, vec![TraceInst::compute_latency(8); 1000]);
        assert!(stats.ipc() > 3.0, "ipc = {}", stats.ipc());
    }

    #[test]
    fn independent_misses_overlap() {
        // 1000 loads, each 100 cycles: with a 128-entry window and a
        // 64-entry LSQ, ~64 misses overlap, so IPC is far above the
        // serialized bound of 1/100.
        let trace: Vec<_> = (0..1000).map(|i| TraceInst::load(i * 64)).collect();
        let stats = run_trace(100, trace);
        assert!(stats.ipc() > 0.3, "ipc = {}", stats.ipc());
        assert_eq!(stats.loads, 1000);
    }

    #[test]
    fn pointer_chasing_serializes() {
        use crate::inst::LoadDep;
        let trace: Vec<_> = (0..500)
            .map(|i| TraceInst::load_dep(i * 64, LoadDep::OnLoadsAgo(1)))
            .collect();
        let stats = run_trace(100, trace);
        // Every load waits for the previous one's data: ~100 cycles each.
        assert!(stats.ipc() < 0.02, "ipc = {}", stats.ipc());
        assert!(stats.dep_wait_cycles > 0);
    }

    #[test]
    fn chased_loads_much_slower_than_independent() {
        use crate::inst::LoadDep;
        let indep: Vec<_> = (0..500).map(|i| TraceInst::load(i * 64)).collect();
        let chase: Vec<_> = (0..500)
            .map(|i| TraceInst::load_dep(i * 64, LoadDep::OnLoadsAgo(1)))
            .collect();
        let a = run_trace(100, indep);
        let b = run_trace(100, chase);
        assert!(a.ipc() > 10.0 * b.ipc(), "{} vs {}", a.ipc(), b.ipc());
    }

    #[test]
    fn stores_do_not_block_commit() {
        let trace: Vec<_> = (0..1000).map(|i| TraceInst::store(i * 64)).collect();
        let stats = run_trace(100, trace);
        // Stores are posted: IPC stays near the LSQ-limited width.
        assert!(stats.ipc() > 0.9, "ipc = {}", stats.ipc());
        assert_eq!(stats.stores, 1000);
    }

    #[test]
    fn crypto_barrier_waits_for_verification() {
        /// A port pretending checks complete far in the future.
        #[derive(Debug)]
        struct SlowVerify;
        impl MemoryPort for SlowVerify {
            fn load(&mut self, now: Cycle, _addr: u64) -> Cycle {
                now + 1
            }
            fn store(&mut self, now: Cycle, _addr: u64, _fl: bool) -> Cycle {
                now
            }
            fn verification_horizon(&self) -> Cycle {
                50_000
            }
        }
        let mut core = Core::new(CoreConfig::default(), SlowVerify);
        let stats = core.run(vec![
            TraceInst::load(0),
            TraceInst::crypto_barrier(),
            TraceInst::compute(),
        ]);
        assert!(
            stats.cycles >= 50_000,
            "barrier must wait: {}",
            stats.cycles
        );
        assert_eq!(stats.barriers, 1);
    }

    #[test]
    fn segments_accumulate_time() {
        let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(10));
        let s1 = core.run((0..100).map(|_| TraceInst::compute()));
        let t1 = core.now();
        let s2 = core.run((0..100).map(|_| TraceInst::compute()));
        assert_eq!(s1.instructions, 100);
        assert_eq!(s2.instructions, 100);
        assert!(core.now() > t1);
        // Segment cycles measure only their own span.
        assert!(s2.cycles <= s1.cycles + 1);
    }

    #[test]
    fn window_limits_parallelism() {
        // A tiny window cannot hide 100-cycle misses as well as a big one.
        let trace: Vec<_> = (0..2000).map(|i| TraceInst::load(i * 64)).collect();
        let small = {
            let cfg = CoreConfig {
                ruu_size: 8,
                lsq_size: 4,
                ..Default::default()
            };
            let mut core = Core::new(cfg, FixedLatencyPort::new(100));
            core.run(trace.clone())
        };
        let big = {
            let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(100));
            core.run(trace)
        };
        assert!(
            big.ipc() > 2.0 * small.ipc(),
            "{} vs {}",
            big.ipc(),
            small.ipc()
        );
    }

    #[test]
    fn mispredicted_branches_throttle_issue() {
        let mixed = |mispredict_every: usize| {
            let trace: Vec<_> = (0..4000)
                .map(|i| {
                    if i % 8 == 0 {
                        if mispredict_every > 0 && i % (8 * mispredict_every) == 0 {
                            TraceInst::branch_mispredicted()
                        } else {
                            TraceInst::branch()
                        }
                    } else {
                        TraceInst::compute()
                    }
                })
                .collect();
            let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(0));
            core.run(trace).ipc()
        };
        let perfect = mixed(0);
        let sometimes = mixed(4);
        assert!(perfect > 3.5, "predicted branches are free: {perfect}");
        assert!(
            sometimes < perfect * 0.8,
            "mispredicts must cost fetch cycles: {sometimes} vs {perfect}"
        );
    }

    #[test]
    fn branch_stats_counted() {
        let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(0));
        let stats = core.run(vec![
            TraceInst::branch(),
            TraceInst::branch_mispredicted(),
            TraceInst::compute(),
        ]);
        assert_eq!(stats.branches, 2);
        assert_eq!(stats.mispredicts, 1);
    }

    #[test]
    fn ipc_zero_for_empty_trace() {
        let mut core = Core::new(CoreConfig::default(), FixedLatencyPort::new(1));
        let stats = core.run(Vec::new());
        assert_eq!(stats.instructions, 0);
        assert_eq!(stats.ipc(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window smaller than width")]
    fn bad_config_rejected() {
        let cfg = CoreConfig {
            width: 8,
            ruu_size: 4,
            lsq_size: 4,
            ..Default::default()
        };
        let _ = Core::new(cfg, FixedLatencyPort::new(1));
    }
}
