//! The interface between the core and the memory hierarchy.

use crate::Cycle;

/// A memory hierarchy as seen by the core.
///
/// Implementations book their internal resources (caches, checker, bus)
/// when a request is issued and answer with completion times. `miv-sim`
/// provides the full L1/L2/checker/DRAM hierarchy; [`FixedLatencyPort`]
/// is a perfect-memory stand-in for tests.
pub trait MemoryPort {
    /// Issues a load whose address is ready at `now`; returns the cycle
    /// the data is available to dependent instructions.
    ///
    /// With speculative background verification (§5.8) this is when the
    /// *data* arrives, not when its integrity check completes.
    fn load(&mut self, now: Cycle, addr: u64) -> Cycle;

    /// Issues a store that retires at `now`. `full_line` marks stores that
    /// participate in a whole-line overwrite (§5.3 optimization).
    ///
    /// Returns the cycle the store is accepted by the hierarchy (stores
    /// are posted; the core does not wait for memory).
    fn store(&mut self, now: Cycle, addr: u64, full_line: bool) -> Cycle;

    /// The cycle by which every integrity check issued so far completes.
    ///
    /// Crypto-barrier instructions cannot commit earlier than this
    /// (§5.8). Hierarchies without verification return `0`.
    fn verification_horizon(&self) -> Cycle {
        0
    }
}

/// A perfect memory with a fixed access latency — useful for unit tests
/// and as an idealized baseline.
///
/// # Examples
///
/// ```
/// use miv_cpu::{FixedLatencyPort, MemoryPort};
///
/// let mut port = FixedLatencyPort::new(10);
/// assert_eq!(port.load(100, 0xdead), 110);
/// assert_eq!(port.store(100, 0xdead, false), 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FixedLatencyPort {
    latency: Cycle,
    loads: u64,
    stores: u64,
}

impl FixedLatencyPort {
    /// Creates a port with the given load latency.
    pub fn new(latency: Cycle) -> Self {
        FixedLatencyPort {
            latency,
            loads: 0,
            stores: 0,
        }
    }

    /// Number of loads issued.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of stores issued.
    pub fn stores(&self) -> u64 {
        self.stores
    }
}

impl MemoryPort for FixedLatencyPort {
    fn load(&mut self, now: Cycle, _addr: u64) -> Cycle {
        self.loads += 1;
        now + self.latency
    }

    fn store(&mut self, now: Cycle, _addr: u64, _full_line: bool) -> Cycle {
        self.stores += 1;
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_counts() {
        let mut p = FixedLatencyPort::new(5);
        p.load(0, 0);
        p.load(3, 64);
        p.store(7, 128, true);
        assert_eq!(p.loads(), 2);
        assert_eq!(p.stores(), 1);
        assert_eq!(p.verification_horizon(), 0);
    }
}
