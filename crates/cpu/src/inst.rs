//! The trace instruction format consumed by the core model.

/// How a load's address depends on earlier loads.
///
/// This is the knob that differentiates streaming benchmarks (independent
/// loads, high memory-level parallelism) from pointer-chasing ones like
/// `mcf` (each load's address comes from the previous load, so misses
/// serialize).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoadDep {
    /// The address is available at issue; the load can go to memory
    /// immediately (array streaming, stack access).
    #[default]
    Independent,
    /// The address is produced by the `n`-th most recent load (1 = the
    /// immediately preceding load): the load cannot issue to memory until
    /// that load's data returns. `OnLoadsAgo(1)` is a pointer chase.
    OnLoadsAgo(u8),
}

/// One instruction kind in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// A non-memory instruction completing `latency` cycles after issue
    /// (1 for simple ALU ops, more for multiplies/FP).
    Compute {
        /// Execution latency in cycles (≥ 1).
        latency: u8,
    },
    /// A load from `addr`.
    Load {
        /// Byte address accessed.
        addr: u64,
        /// Address dependency on earlier loads.
        dep: LoadDep,
    },
    /// A store to `addr`.
    Store {
        /// Byte address accessed.
        addr: u64,
        /// `true` when this store is part of a run that overwrites its
        /// whole cache line — enables the §5.3 write-allocate-without-
        /// fetch optimization in the checker.
        full_line: bool,
    },
    /// A conditional branch. A mispredicted branch redirects fetch:
    /// issue of younger instructions stalls for the core's misprediction
    /// penalty after the branch executes.
    Branch {
        /// Whether the predictor missed this branch.
        mispredicted: bool,
    },
    /// A cryptographic instruction (§5.8): acts as a verification
    /// barrier — it cannot commit until every preceding integrity check
    /// has completed.
    CryptoBarrier,
}

/// One instruction of a trace.
///
/// # Examples
///
/// ```
/// use miv_cpu::{LoadDep, TraceInst, TraceOp};
///
/// let chase = TraceInst::load_dep(0x1000, LoadDep::OnLoadsAgo(1));
/// assert!(matches!(chase.op, TraceOp::Load { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceInst {
    /// The operation.
    pub op: TraceOp,
}

impl TraceInst {
    /// A 1-cycle ALU instruction.
    pub fn compute() -> Self {
        TraceInst {
            op: TraceOp::Compute { latency: 1 },
        }
    }

    /// A compute instruction with the given latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn compute_latency(latency: u8) -> Self {
        assert!(latency >= 1, "compute latency must be at least 1");
        TraceInst {
            op: TraceOp::Compute { latency },
        }
    }

    /// An independent load.
    pub fn load(addr: u64) -> Self {
        TraceInst {
            op: TraceOp::Load {
                addr,
                dep: LoadDep::Independent,
            },
        }
    }

    /// A load with an explicit dependency on earlier loads.
    pub fn load_dep(addr: u64, dep: LoadDep) -> Self {
        TraceInst {
            op: TraceOp::Load { addr, dep },
        }
    }

    /// A store (not known to overwrite its whole line).
    pub fn store(addr: u64) -> Self {
        TraceInst {
            op: TraceOp::Store {
                addr,
                full_line: false,
            },
        }
    }

    /// A store that is part of a whole-line overwrite.
    pub fn store_full_line(addr: u64) -> Self {
        TraceInst {
            op: TraceOp::Store {
                addr,
                full_line: true,
            },
        }
    }

    /// A correctly predicted branch.
    pub fn branch() -> Self {
        TraceInst {
            op: TraceOp::Branch {
                mispredicted: false,
            },
        }
    }

    /// A mispredicted branch (redirects fetch).
    pub fn branch_mispredicted() -> Self {
        TraceInst {
            op: TraceOp::Branch { mispredicted: true },
        }
    }

    /// A crypto-barrier instruction.
    pub fn crypto_barrier() -> Self {
        TraceInst {
            op: TraceOp::CryptoBarrier,
        }
    }

    /// Returns `true` for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self.op, TraceOp::Load { .. } | TraceOp::Store { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(TraceInst::compute().op, TraceOp::Compute { latency: 1 });
        assert!(TraceInst::load(8).is_mem());
        assert!(TraceInst::store(8).is_mem());
        assert!(!TraceInst::compute().is_mem());
        assert!(!TraceInst::crypto_barrier().is_mem());
        assert!(!TraceInst::branch().is_mem());
        assert_eq!(
            TraceInst::branch_mispredicted().op,
            TraceOp::Branch { mispredicted: true }
        );
        assert_eq!(
            TraceInst::store_full_line(64).op,
            TraceOp::Store {
                addr: 64,
                full_line: true
            }
        );
        assert_eq!(LoadDep::default(), LoadDep::Independent);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_latency_rejected() {
        let _ = TraceInst::compute_latency(0);
    }
}
