//! Cross-crate integration tests: the full stack from workload generation
//! through the cycle-level simulator, and the functional engine driven by
//! simulator-style traffic.

use miv::core::{MemoryBuilder, Protection, Scheme, TamperKind};
use miv::cpu::{Core, CoreConfig, TraceOp};
use miv::sim::{System, SystemConfig};
use miv::trace::Benchmark;

/// The full machine runs every benchmark under every scheme without
/// panicking and produces internally consistent results.
#[test]
fn every_scheme_runs_every_benchmark() {
    for scheme in Scheme::ALL {
        for bench in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Swim] {
            let cfg = SystemConfig::hpca03(scheme, 256 << 10, 64);
            let r = System::for_benchmark(cfg, bench, 1).run(2_000, 20_000);
            assert_eq!(r.instructions, 20_000, "{scheme}/{bench}");
            assert!(
                r.ipc > 0.0 && r.ipc <= 4.0,
                "{scheme}/{bench}: ipc {}",
                r.ipc
            );
            assert!(r.l2_data_miss_rate <= 1.0);
            if scheme == Scheme::Base {
                assert_eq!(r.hash_bytes, 0, "{bench}");
            }
        }
    }
}

/// The scheme ordering the paper establishes: chash between base and
/// naive for a memory-intensive workload.
#[test]
fn scheme_ordering_holds() {
    let run = |scheme| {
        let cfg = SystemConfig::hpca03(scheme, 1 << 20, 64);
        System::for_benchmark(cfg, Benchmark::Swim, 7)
            .run(20_000, 150_000)
            .ipc
    };
    let base = run(Scheme::Base);
    let chash = run(Scheme::CHash);
    let naive = run(Scheme::Naive);
    assert!(base >= chash, "base {base} >= chash {chash}");
    assert!(
        chash > 2.0 * naive,
        "chash {chash} should dwarf naive {naive}"
    );
}

/// Identical seeds give bit-identical simulation results (the whole stack
/// is deterministic).
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
        let r = System::for_benchmark(cfg, Benchmark::Vortex, 99).run(5_000, 50_000);
        (r.cycles, r.l2_data_misses, r.bus_bytes)
    };
    assert_eq!(run(), run());
}

/// Drive the *functional* engine with the same trace the simulator uses:
/// every load/store verifies, and a final audit passes.
#[test]
fn functional_engine_replays_simulator_trace() {
    let profile = miv::trace::Profile::cache_friendly("integration", 64 * 1024);
    let mut mem = MemoryBuilder::new()
        .data_bytes(64 * 1024)
        .cache_blocks(128)
        .build();
    let mut ops = 0;
    for inst in miv::trace::TraceGenerator::new(profile, 5).take(30_000) {
        match inst.op {
            TraceOp::Load { addr, .. } => {
                let a = addr.min(64 * 1024 - 8);
                mem.read_vec(a, 8).unwrap();
                ops += 1;
            }
            TraceOp::Store { addr, .. } => {
                let a = addr.min(64 * 1024 - 8);
                mem.write(a, &a.to_le_bytes()).unwrap();
                ops += 1;
            }
            _ => {}
        }
    }
    assert!(ops > 5_000, "trace exercised the engine: {ops} ops");
    mem.flush().unwrap();
    mem.verify_all().unwrap();
}

/// The incremental-MAC engine survives the same replay attack the hash
/// tree catches, end to end.
#[test]
fn both_protections_catch_the_same_replay() {
    for protection in [Protection::HashTree, Protection::IncrementalMac] {
        let mut mem = MemoryBuilder::new()
            .data_bytes(16 * 1024)
            .chunk_bytes(128)
            .block_bytes(64)
            .protection(protection)
            .cache_blocks(128)
            .build();
        mem.write(0x800, b"generation 1").unwrap();
        mem.flush().unwrap();
        let phys = mem.layout().data_phys_addr(0x800);
        let snap = mem.adversary().snapshot(phys, 64);
        mem.write(0x800, b"generation 2").unwrap();
        mem.flush().unwrap();
        mem.clear_cache().unwrap();
        mem.adversary().replay(&snap);
        assert!(
            mem.read_vec(0x800, 12).is_err(),
            "{protection:?} must detect the replay"
        );
    }
}

/// Crypto barriers observe the verification horizon through the whole
/// hierarchy (the §5.8 signing rule).
#[test]
fn crypto_barrier_waits_for_hierarchy_checks() {
    use miv::cpu::TraceInst;
    let cfg = SystemConfig::hpca03(Scheme::CHash, 256 << 10, 64);
    let hierarchy = miv::sim::Hierarchy::new(&cfg);
    let mut core = Core::new(CoreConfig::default(), hierarchy);
    let stats = core.run(vec![TraceInst::load(0x100), TraceInst::crypto_barrier()]);
    assert_eq!(stats.barriers, 1);
    // The barrier cannot commit before the load's background check ends.
    let horizon = core.port().l2().verification_horizon();
    assert!(horizon > 0, "the load scheduled a background check");
    assert!(core.now() >= horizon);
}

/// A tamper detected mid-computation prevents certification (the §4.1
/// story, condensed).
#[test]
fn tampering_blocks_certification() {
    let mut mem = MemoryBuilder::new()
        .data_bytes(32 * 1024)
        .cache_blocks(128)
        .build();
    for i in 0..512u64 {
        mem.write(i * 8, &(i * i).to_le_bytes()).unwrap();
    }
    mem.flush().unwrap();
    mem.clear_cache().unwrap();
    let phys = mem.layout().data_phys_addr(128 * 8);
    mem.adversary().tamper(phys, TamperKind::BitFlip { bit: 2 });
    // The fold over the table hits the tampered word and aborts.
    let mut acc = 0u64;
    let mut detected = false;
    for i in 0..512u64 {
        match mem.read_vec(i * 8, 8) {
            Ok(b) => acc ^= u64::from_le_bytes(b.try_into().unwrap()),
            Err(_) => {
                detected = true;
                break;
            }
        }
    }
    assert!(detected, "result {acc:#x} would have been silently wrong");
}
